package experiments

import (
	"fmt"
	"math/rand"

	"github.com/largemail/largemail/internal/client"
	"github.com/largemail/largemail/internal/core"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/locind"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/obs"
	"github.com/largemail/largemail/internal/server"
	"github.com/largemail/largemail/internal/sim"
)

// E12AuthorityListLength validates §3.1.1: "the length of the list depends
// on the probability of server failures and the degree of reliability
// required" — longer authority lists buy mail-service availability at the
// price of extra polls when failures occur.
func E12AuthorityListLength() Result {
	t := obs.NewTable("E12: authority-list length vs service availability (4 servers, p=0.25 churn, 150 rounds)",
		"ListLen", "ServiceAvail", "Received/Sent", "Polls/Retrieval")
	notes := []string{}
	var prevAvail float64 = -1
	monotone := true
	for listLen := 1; listLen <= 4; listLen++ {
		avail, recvRate, polls := authorityLengthRun(listLen, 150, 0.25)
		t.AddRow(listLen, avail, recvRate, polls)
		if avail < prevAvail-1e-9 {
			monotone = false
		}
		prevAvail = avail
	}
	if monotone {
		notes = append(notes, "service availability grows monotonically with list length, as §3.1.1 argues")
	} else {
		notes = append(notes, "WARNING: availability not monotone in list length")
	}
	notes = append(notes,
		"a single authority server leaves the user locked out whenever it is down",
		"every accepted message is eventually received at every length (deposit retries + GetMail)")
	return Result{
		ID:    "e12",
		Title: "Authority-list length buys reliability (§3.1.1)",
		Table: t,
		Notes: notes,
	}
}

// authorityLengthRun builds a 4-server region where alice's authority list
// is truncated to listLen, churns servers, and measures alice's
// mail-service availability (Connect success rate), eventual delivery, and
// polls per retrieval.
func authorityLengthRun(listLen, rounds int, p float64) (avail, recvRate, pollsPerCheck float64) {
	const (
		hA graph.NodeID = 1
		hB graph.NodeID = 2
	)
	serverIDs := []graph.NodeID{101, 102, 103, 104}
	g := graph.New()
	g.MustAddNode(graph.Node{ID: hA, Label: "HA", Region: "R1", Kind: graph.KindHost})
	g.MustAddNode(graph.Node{ID: hB, Label: "HB", Region: "R1", Kind: graph.KindHost})
	for i, id := range serverIDs {
		g.MustAddNode(graph.Node{ID: id, Label: fmt.Sprintf("S%d", i+1), Region: "R1", Kind: graph.KindServer})
	}
	g.MustAddEdge(hA, serverIDs[0], 1)
	g.MustAddEdge(hB, serverIDs[1], 1)
	for i := 0; i+1 < len(serverIDs); i++ {
		g.MustAddEdge(serverIDs[i], serverIDs[i+1], 1)
	}
	sched := sim.New(int64(listLen))
	net := netsim.New(sched, g)
	dir := server.NewDirectory("R1")
	regions := server.NewRegionMap()
	srvs := make(map[graph.NodeID]*server.Server)
	for _, id := range serverIDs {
		srv, err := server.New(server.Config{ID: id, Region: "R1", Net: net, Dir: dir, Regions: regions})
		if err != nil {
			panic(err)
		}
		srvs[id] = srv
	}
	aliceName := names.MustParse("R1.HA.alice")
	bobName := names.MustParse("R1.HB.bob")
	aliceList := serverIDs[:listLen]
	if err := dir.SetAuthority(aliceName, aliceList); err != nil {
		panic(err)
	}
	// Bob keeps the full list so submissions rarely fail on his side.
	if err := dir.SetAuthority(bobName, []graph.NodeID{serverIDs[1], serverIDs[2], serverIDs[3], serverIDs[0]}); err != nil {
		panic(err)
	}
	hostA, err := client.NewHost(net, hA)
	if err != nil {
		panic(err)
	}
	hostB, err := client.NewHost(net, hB)
	if err != nil {
		panic(err)
	}
	lookup := func(id graph.NodeID) *server.Server { return srvs[id] }
	alice, err := client.NewAgent(aliceName, hostA, lookup, aliceList)
	if err != nil {
		panic(err)
	}
	bob, err := client.NewAgent(bobName, hostB, lookup, []graph.NodeID{serverIDs[1], serverIDs[2], serverIDs[3], serverIDs[0]})
	if err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewSource(99))
	sent, accessible := 0, 0
	for r := 0; r < rounds; r++ {
		// Churn every server independently, then guarantee global liveness
		// (at least one server up somewhere) so deposits can always retry.
		anyUp := false
		for _, id := range serverIDs {
			if rng.Float64() < p {
				net.Crash(id)
			} else {
				net.Recover(id)
				anyUp = true
			}
		}
		if !anyUp {
			net.Recover(serverIDs[rng.Intn(len(serverIDs))])
		}
		if _, err := bob.Send([]names.Name{aliceName}, "s", "b"); err == nil {
			sent++
		}
		sched.RunFor(40 * sim.Unit)
		// Service availability: can alice reach any of her authority
		// servers this round?
		if _, err := alice.Connect(); err == nil {
			accessible++
		}
		alice.GetMail()
	}
	for _, id := range serverIDs {
		net.Recover(id)
	}
	sched.RunFor(400 * sim.Unit)
	sched.Run()
	alice.GetMail()
	alice.GetMail()
	st := alice.Stats()
	avail = float64(accessible) / float64(rounds)
	if sent > 0 {
		recvRate = float64(st.Received) / float64(sent)
	}
	if st.Retrievals > 0 {
		pollsPerCheck = float64(st.Polls) / float64(st.Retrievals)
	}
	return avail, recvRate, pollsPerCheck
}

// E13RemoteAccess quantifies §3.2.4's inter-region trade-off: "a user can
// remotely access his old region ... but remote access is usually slow and
// imposes large overhead", so "obtaining a new name for a user who plans to
// move for a long time may place less overhead on the system". Remote-access
// cost grows linearly with the number of mail checks; migration (rename +
// redirect) is a one-time cost.
func E13RemoteAccess() Result {
	// Build the Figure 1 region as a location-independent system plus a
	// distant access point two extra hops away (the "other region" node the
	// mover reads mail from).
	ex := graph.Figure1()
	far := graph.NodeID(900)
	relay := graph.NodeID(901)
	ex.G.MustAddNode(graph.Node{ID: relay, Label: "GW", Region: "R2", Kind: graph.KindRouter})
	ex.G.MustAddNode(graph.Node{ID: far, Label: "FAR", Region: "R2", Kind: graph.KindHost})
	ex.G.MustAddEdge(ex.Servers[2], relay, 2)
	ex.G.MustAddEdge(relay, far, 2)
	users := map[graph.NodeID][]string{
		ex.Hosts[0]: {"mover"},
		ex.Hosts[1]: {"sender"},
	}
	s, err := core.NewLocation(core.LocationConfig{
		Topology: ex.G, Region: "R1", UsersPerHost: users, Seed: 91,
	})
	if err != nil {
		panic(err)
	}
	mover := names.MustParse("R1.H1.mover")
	sender, _ := s.Agent(names.MustParse("R1.H2.sender"))
	agent, _ := s.Agent(mover)

	// One-time migration cost: the measured rename + redirect traffic of
	// the E8 scenario, plus §3.1.4's requirement that "the senders are
	// notified about the name changes" — one round trip to each of the
	// mover's correspondents (20 here, at the region's mean path cost).
	migrationCost := measureMigrationCost()
	const correspondents = 20
	meanPath := meanPathCost(ex.G, ex.Hosts[0])
	migrationCost += correspondents * 2 * meanPath

	t := obs.NewTable(
		fmt.Sprintf("E13: remote access vs migration (remote factor %d×, one-time migration cost %.1f)",
			locind.RemoteAccessFactor, migrationCost),
		"MailChecks", "CumulativeRemoteCost", "CheaperOption")
	cum := 0.0
	crossover := -1
	for n := 1; n <= 24; n++ {
		if err := sender.Send([]names.Name{mover}, "m", "b"); err != nil {
			panic(err)
		}
		s.Run()
		_, cost := agent.RemoteGetMail(far)
		cum += cost
		if n == 1 || n == 2 || n == 4 || n == 8 || n == 16 || n == 24 {
			opt := "remote access"
			if cum > migrationCost {
				opt = "migrate (rename)"
			}
			t.AddRow(n, cum, opt)
		}
		if crossover < 0 && cum > migrationCost {
			crossover = n
		}
	}
	notes := []string{
		fmt.Sprintf("remote-access cost passes the one-time migration cost after %d mail checks", crossover),
		"§3.2.4: renaming 'may place less overhead on the system' for long-term moves — quantified",
	}
	if agent.Inbox() == nil || len(agent.Inbox()) != 24 {
		notes = append(notes, "WARNING: remote retrieval lost mail")
	}
	return Result{
		ID:    "e13",
		Title: "Inter-region movement: remote access vs renaming (§3.2.4)",
		Table: t,
		Notes: notes,
	}
}

// meanPathCost is the mean shortest-path cost from a node to every other
// node — the expected one-way cost of notifying a random correspondent.
func meanPathCost(g *graph.Graph, from graph.NodeID) float64 {
	paths, err := g.ShortestPaths(from)
	if err != nil {
		panic(err)
	}
	total, n := 0.0, 0
	for id, d := range paths.Dist {
		if id == from {
			continue
		}
		total += d
		n++
	}
	return total / float64(n)
}

// measureMigrationCost runs the E8 syntax-directed migration scenario and
// returns the network cost it incurred (directory/redirect traffic).
func measureMigrationCost() float64 {
	ex := graph.Figure1()
	g := ex.G
	h7 := graph.HostBase + 7
	s4 := graph.ServerBase + 4
	g.MustAddNode(graph.Node{ID: h7, Label: "H7", Region: "R2", Kind: graph.KindHost})
	g.MustAddNode(graph.Node{ID: s4, Label: "S4", Region: "R2", Kind: graph.KindServer})
	g.MustAddEdge(s4, ex.Servers[2], 2)
	g.MustAddEdge(h7, s4, 1)
	users := map[graph.NodeID][]string{
		ex.Hosts[0]: {"mover"},
		ex.Hosts[1]: {"sender"},
		h7:          {"resident"},
	}
	s, err := core.NewSyntax(core.SyntaxConfig{Topology: g, UsersPerHost: users, Seed: 92})
	if err != nil {
		panic(err)
	}
	before := s.Net.Stats().Get("cost_milli")
	old := names.MustParse("R1.H1.mover")
	newName, err := s.MigrateUser(old, h7)
	if err != nil {
		panic(err)
	}
	// Five straggler messages to the old name ride the redirect.
	sender := names.MustParse("R1.H2.sender")
	for i := 0; i < 5; i++ {
		if err := s.Send(sender, []names.Name{old}, "follow", "b"); err != nil {
			panic(err)
		}
	}
	s.Run()
	agent, _ := s.Agent(newName)
	agent.GetMail()
	return float64(s.Net.Stats().Get("cost_milli")-before) / 1000
}

// E14ConnectionSetup quantifies §3.1.2a's trade-off between the two
// connection-setup schemes: locally maintained authority lists ("large
// overhead in maintaining the authority server list ... the lists still
// need to be updated when there are changes in system configurations")
// versus querying a name server per connection ("the problem is shifted to
// locating a name server").
func E14ConnectionSetup() Result {
	const (
		users     = 6
		reconfigs = 10
	)
	t := obs.NewTable("E14: connection setup — maintained lists vs name-server queries (6 users, 10 reconfigurations)",
		"Connects/Reconfig", "LocalPushCost", "NameServerQueryCost", "Cheaper")
	notes := []string{}
	for _, connects := range []int{0, 1, 5, 20} {
		localCost := connectionSetupRun(connects, false)
		nsCost := connectionSetupRun(connects, true)
		cheaper := "maintained lists"
		if nsCost < localCost {
			cheaper = "name server"
		}
		t.AddRow(connects, localCost, nsCost, cheaper)
	}
	notes = append(notes,
		"maintained lists pay per reconfiguration; name-server mode pays per connection",
		"rarely-connecting users favour the name server; busy users favour the local list — the §3.1.2a trade-off")
	return Result{
		ID:    "e14",
		Title: "Connection setup: list maintenance vs name-server queries (§3.1.2a)",
		Table: t,
		Notes: notes,
	}
}

// connectionSetupRun drives one host with several agents through
// reconfiguration rounds and returns the list-management traffic cost of
// the chosen mode.
func connectionSetupRun(connectsPerReconfig int, nameServerMode bool) float64 {
	const (
		hA graph.NodeID = 1
		s1 graph.NodeID = 101
		s2 graph.NodeID = 102
	)
	g := graph.New()
	g.MustAddNode(graph.Node{ID: hA, Label: "HA", Region: "R1", Kind: graph.KindHost})
	g.MustAddNode(graph.Node{ID: s1, Label: "S1", Region: "R1", Kind: graph.KindServer})
	g.MustAddNode(graph.Node{ID: s2, Label: "S2", Region: "R1", Kind: graph.KindServer})
	g.MustAddEdge(hA, s1, 1)
	g.MustAddEdge(s1, s2, 1)
	sched := sim.New(7)
	net := netsim.New(sched, g)
	dir := server.NewDirectory("R1")
	regions := server.NewRegionMap()
	srvs := make(map[graph.NodeID]*server.Server)
	for _, id := range []graph.NodeID{s1, s2} {
		srv, err := server.New(server.Config{ID: id, Region: "R1", Net: net, Dir: dir, Regions: regions})
		if err != nil {
			panic(err)
		}
		srvs[id] = srv
	}
	lookup := func(id graph.NodeID) *server.Server { return srvs[id] }
	host, err := client.NewHost(net, hA)
	if err != nil {
		panic(err)
	}
	lists := [][]graph.NodeID{{s1, s2}, {s2, s1}}
	agents := make([]*client.Agent, 0, 6)
	for i := 0; i < 6; i++ {
		u := names.Name{Region: "R1", Host: "HA", User: fmt.Sprintf("u%d", i)}
		if err := dir.SetAuthority(u, lists[0]); err != nil {
			panic(err)
		}
		a, err := client.NewAgent(u, host, lookup, lists[0])
		if err != nil {
			panic(err)
		}
		if nameServerMode {
			if err := a.UseNameServers([]graph.NodeID{s1, s2}); err != nil {
				panic(err)
			}
		}
		agents = append(agents, a)
	}
	pushRT := 2.0 // round trip host↔nearest server for one list push
	totalCost := 0.0
	for r := 0; r < 10; r++ {
		// Reconfiguration: the authority order flips; the directory is
		// updated in place (name-server mode reads it fresh); local mode
		// pushes the new list to every agent.
		list := lists[(r+1)%2]
		for _, a := range agents {
			if err := dir.SetAuthority(a.User(), list); err != nil {
				panic(err)
			}
			if !nameServerMode {
				if err := a.SetAuthority(list); err != nil {
					panic(err)
				}
				totalCost += pushRT
			}
		}
		for c := 0; c < connectsPerReconfig; c++ {
			for _, a := range agents {
				if _, err := a.Connect(); err != nil {
					panic(err)
				}
			}
		}
	}
	if nameServerMode {
		for _, a := range agents {
			totalCost += a.Stats().ListCost
		}
	}
	return totalCost
}
