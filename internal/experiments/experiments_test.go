package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// cell parses a table cell as float.
func cell(t *testing.T, rows [][]string, r, c int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(rows[r][c], 64)
	if err != nil {
		t.Fatalf("cell[%d][%d] = %q not a number: %v", r, c, rows[r][c], err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{"figure1", "table1", "table2", "table3", "figure2",
		"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("ids[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
	if _, ok := Run("table1"); !ok {
		t.Error("Run(table1) not found")
	}
	if _, ok := Run("nope"); ok {
		t.Error("Run(nope) found")
	}
}

func TestFigure1(t *testing.T) {
	r := Figure1()
	if r.Table.NumRows() != 9 {
		t.Errorf("figure1 rows = %d, want 9", r.Table.NumRows())
	}
	if !strings.Contains(r.Text, "graph \"figure1\"") {
		t.Error("missing DOT output")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	r := Table1()
	rows := r.Table.Rows()
	// Paper's Table 1: H1→S1:50, H2→S2:60, H3→S1:50, H4→S2:50, H5→S2:40,
	// H6→S3:20, then totals 100/150/20.
	want := [][3]string{
		{"H1", "S1", "50"}, {"H2", "S2", "60"}, {"H3", "S1", "50"},
		{"H4", "S2", "50"}, {"H5", "S2", "40"}, {"H6", "S3", "20"},
		{"total", "S1", "100"}, {"total", "S2", "150"}, {"total", "S3", "20"},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %v", rows)
	}
	for i, w := range want {
		for j := 0; j < 3; j++ {
			if rows[i][j] != w[j] {
				t.Errorf("row %d = %v, want %v", i, rows[i], w)
			}
		}
	}
}

func TestTable2Invariants(t *testing.T) {
	r := Table2()
	rows := r.Table.Rows()
	total := 0.0
	for _, row := range rows {
		if row[0] == "total" {
			v, _ := strconv.ParseFloat(row[2], 64)
			total += v
			if v > 100 {
				t.Errorf("server %s still over capacity: %v", row[1], v)
			}
			if v >= 99 {
				t.Errorf("server %s at/above saturation: %v", row[1], v)
			}
		}
	}
	if total != 270 {
		t.Errorf("total assigned = %v, want 270", total)
	}
	joined := strings.Join(r.Notes, "\n")
	if !strings.Contains(joined, "overloaded: 0") {
		t.Errorf("notes lack overload check: %v", r.Notes)
	}
}

func TestTable3Invariants(t *testing.T) {
	r := Table3()
	joined := strings.Join(r.Notes, "\n")
	if !strings.Contains(joined, "initial loads: S1=100 S2=100 S3=20") {
		t.Errorf("table 3 initial loads wrong: %v", r.Notes)
	}
	if !strings.Contains(joined, "overloaded servers: 0") {
		t.Errorf("table 3 still overloaded: %v", r.Notes)
	}
}

func TestFigure2(t *testing.T) {
	r := Figure2()
	if r.Table.NumRows() != 3 {
		t.Errorf("figure2 regions = %d, want 3", r.Table.NumRows())
	}
	if !strings.Contains(r.Text, "style=bold") {
		t.Error("figure2 DOT does not highlight the tree")
	}
	joined := strings.Join(r.Notes, "\n")
	if !strings.Contains(joined, "combined tree: 9 edges over 10 nodes") {
		t.Errorf("figure2 notes: %v", r.Notes)
	}
}

func TestE1Shape(t *testing.T) {
	r := E1PollsPerRetrieval()
	rows := r.Table.Rows()
	if len(rows) != 5 {
		t.Fatalf("e1 rows = %d", len(rows))
	}
	// Failure-free: GetMail ≈ 1 poll, poll-all = 3.
	gm0 := cell(t, rows, 0, 1)
	pa0 := cell(t, rows, 0, 2)
	if gm0 > 1.1 {
		t.Errorf("failure-free GetMail polls = %v, want ≈1", gm0)
	}
	if pa0 < 2.9 {
		t.Errorf("failure-free poll-all polls = %v, want 3", pa0)
	}
	// GetMail stays below poll-all at every failure rate.
	for i := range rows {
		if gm, pa := cell(t, rows, i, 1), cell(t, rows, i, 2); gm >= pa {
			t.Errorf("row %d: GetMail %v not below poll-all %v", i, gm, pa)
		}
	}
}

func TestE2NoLoss(t *testing.T) {
	r := E2NoLoss()
	for i, row := range r.Table.Rows() {
		if row[3] != "0" {
			t.Errorf("seed row %d lost messages: %v", i, row)
		}
	}
}

func TestE3Shape(t *testing.T) {
	r := E3BalancingConvergence()
	for i, row := range r.Table.Rows() {
		near := cell(t, r.Table.Rows(), i, 1)
		bal := cell(t, r.Table.Rows(), i, 2)
		if bal >= near {
			t.Errorf("row %d (%s): balanced cost %v not below nearest %v", i, row[0], bal, near)
		}
		moves := cell(t, r.Table.Rows(), i, 7)
		batch := cell(t, r.Table.Rows(), i, 8)
		if batch >= moves {
			t.Errorf("row %d: batch moves %v not fewer than %v", i, batch, moves)
		}
	}
}

func TestE4Shape(t *testing.T) {
	r := E4BroadcastCost()
	rows := r.Table.Rows()
	prev := 0.0
	for i := range rows {
		ratio := cell(t, rows, i, 4)
		if ratio <= 1 {
			t.Errorf("row %d: flood/tree ratio %v not > 1", i, ratio)
		}
		if i > 0 && ratio < prev*0.5 {
			t.Errorf("ratio collapsed at row %d: %v after %v", i, ratio, prev)
		}
		prev = ratio
	}
}

func TestE5Shape(t *testing.T) {
	r := E5GHSCorrectness()
	for i, row := range r.Table.Rows() {
		if row[3] != row[4] {
			t.Errorf("row %d: GHS weight %s != MST %s", i, row[4], row[3])
		}
		msgs := cell(t, r.Table.Rows(), i, 5)
		bound := cell(t, r.Table.Rows(), i, 6)
		if msgs > bound {
			t.Errorf("row %d: messages %v above bound %v", i, msgs, bound)
		}
	}
}

func TestE6Shape(t *testing.T) {
	r := E6ConvergecastFailures()
	rows := r.Table.Rows()
	if rows[0][1] != "10" {
		t.Errorf("failure-free run reached %s nodes, want 10", rows[0][1])
	}
	if rows[0][3] != "[]" {
		t.Errorf("failure-free unavailable = %s", rows[0][3])
	}
	// Crashing node 13 cuts off region C.
	if reached := cell(t, rows, 1, 1); reached >= 10 {
		t.Errorf("crash scenario reached %v nodes", reached)
	}
	if !strings.Contains(rows[1][3], "13") {
		t.Errorf("crashed node not marked: %s", rows[1][3])
	}
}

func TestE7Shape(t *testing.T) {
	r := E7RoamingOverhead()
	rows := r.Table.Rows()
	if c := cell(t, rows, 0, 1); c != 0 {
		t.Errorf("home consultations = %v, want 0", c)
	}
	homeMsgs := cell(t, rows, 0, 3)
	roamMsgs := cell(t, rows, 1, 3)
	if roamMsgs <= homeMsgs {
		t.Errorf("roaming traffic %v not above home traffic %v", roamMsgs, homeMsgs)
	}
}

func TestE8Shape(t *testing.T) {
	r := E8MigrationOverhead()
	rows := r.Table.Rows()
	if rows[0][1] != "1" || rows[1][1] != "0" {
		t.Errorf("renames: %v / %v", rows[0], rows[1])
	}
	if rows[0][3] != "5" || rows[1][3] != "5" {
		t.Errorf("follow-up delivery incomplete: %v / %v", rows[0], rows[1])
	}
	if redirected := cell(t, rows, 0, 2); redirected != 5 {
		t.Errorf("redirected = %v, want 5", redirected)
	}
}

func TestE9Shape(t *testing.T) {
	r := E9CostTableAccuracy()
	rows := r.Table.Rows()
	if len(rows) != 3 {
		t.Fatalf("e9 rows = %v", rows)
	}
	// Estimates must rank regions in the same order as measured costs.
	type pair struct{ est, meas float64 }
	var ps []pair
	for i := range rows {
		ps = append(ps, pair{cell(t, rows, i, 1), cell(t, rows, i, 2)})
	}
	for i := 0; i < len(ps); i++ {
		for j := i + 1; j < len(ps); j++ {
			if (ps[i].est < ps[j].est) != (ps[i].meas < ps[j].meas) {
				t.Errorf("estimate ordering disagrees with measured: %+v vs %+v", ps[i], ps[j])
			}
		}
	}
}

func TestE10Shape(t *testing.T) {
	r := E10AttributeSelectivity()
	rows := r.Table.Rows()
	if got := rows[0][1]; got != "1" {
		t.Errorf("fuzzy lookup matched %s users, want 1", got)
	}
	for i := range rows {
		tree := cell(t, rows, i, 3)
		flood := cell(t, rows, i, 4)
		if tree >= flood {
			t.Errorf("row %d: tree cost %v not below flood %v", i, tree, flood)
		}
	}
}

func TestE11Shape(t *testing.T) {
	r := E11CriteriaComparison()
	rows := r.Table.Rows()
	if rows[0][1] != "1" || rows[0][2] != "1" {
		t.Errorf("delivered rates: %v", rows[0])
	}
	if rows[3][1] != "1" || rows[3][2] != "0" {
		t.Errorf("renames row: %v", rows[3])
	}
	if !strings.Contains(r.Text, "§4 criteria") {
		t.Error("missing rendered reports")
	}
}

func TestE12Shape(t *testing.T) {
	r := E12AuthorityListLength()
	rows := r.Table.Rows()
	if len(rows) != 4 {
		t.Fatalf("e12 rows = %v", rows)
	}
	// Availability is monotone non-decreasing in list length and every
	// accepted message arrives.
	prev := -1.0
	for i := range rows {
		avail := cell(t, rows, i, 1)
		if avail < prev-1e-9 {
			t.Errorf("availability not monotone at row %d: %v after %v", i, avail, prev)
		}
		prev = avail
		if rr := cell(t, rows, i, 2); rr != 1 {
			t.Errorf("row %d: received/sent = %v, want 1", i, rr)
		}
	}
	// A single-server list must be noticeably less available than the full
	// list under p=0.25 churn.
	if one, four := cell(t, rows, 0, 1), cell(t, rows, 3, 1); one >= four {
		t.Errorf("list length 1 availability %v not below length 4 %v", one, four)
	}
}

func TestE13Shape(t *testing.T) {
	r := E13RemoteAccess()
	rows := r.Table.Rows()
	if len(rows) != 6 {
		t.Fatalf("e13 rows = %v", rows)
	}
	// Cumulative remote cost is strictly increasing, and the option flips
	// from remote access to migration exactly once.
	prev := 0.0
	flips := 0
	last := ""
	for i, row := range rows {
		cum := cell(t, rows, i, 1)
		if cum <= prev {
			t.Errorf("row %d: cumulative cost %v not increasing", i, cum)
		}
		prev = cum
		if row[2] != last {
			if last != "" {
				flips++
			}
			last = row[2]
		}
	}
	if flips != 1 {
		t.Errorf("option flipped %d times, want exactly 1 crossover", flips)
	}
	if rows[0][2] != "remote access" {
		t.Errorf("first row option = %q, want remote access", rows[0][2])
	}
	if rows[len(rows)-1][2] != "migrate (rename)" {
		t.Errorf("last row option = %q, want migrate", rows[len(rows)-1][2])
	}
}

func TestE14Shape(t *testing.T) {
	r := E14ConnectionSetup()
	rows := r.Table.Rows()
	if len(rows) != 4 {
		t.Fatalf("e14 rows = %v", rows)
	}
	// Local push cost is flat across connection rates; name-server cost
	// grows with connections. With zero connects, the name server is free.
	localFlat := rows[0][1]
	for i := range rows {
		if rows[i][1] != localFlat {
			t.Errorf("local cost not flat: %v", rows)
		}
	}
	if ns0 := cell(t, rows, 0, 2); ns0 != 0 {
		t.Errorf("name-server cost with zero connects = %v, want 0", ns0)
	}
	if rows[0][3] != "name server" {
		t.Errorf("zero connects: cheaper = %q", rows[0][3])
	}
	last := len(rows) - 1
	if rows[last][3] != "maintained lists" {
		t.Errorf("frequent connects: cheaper = %q", rows[last][3])
	}
	if a, b := cell(t, rows, 1, 2), cell(t, rows, 3, 2); b <= a {
		t.Error("name-server cost did not grow with connects")
	}
}

func TestAllRunsAndRenders(t *testing.T) {
	results := All()
	if len(results) != len(IDs()) {
		t.Fatalf("All returned %d results", len(results))
	}
	for _, r := range results {
		out := r.Render()
		if !strings.Contains(out, r.ID) || len(out) < 40 {
			t.Errorf("render of %s too small:\n%s", r.ID, out)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Table2().Table.Render()
	b := Table2().Table.Render()
	if a != b {
		t.Error("Table2 not deterministic")
	}
	ra := E1PollsPerRetrieval().Table.Render()
	rb := E1PollsPerRetrieval().Table.Render()
	if ra != rb {
		t.Error("E1 not deterministic")
	}
}
