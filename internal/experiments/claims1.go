package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/largemail/largemail/internal/assign"
	"github.com/largemail/largemail/internal/broadcast"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mst"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/obs"
	"github.com/largemail/largemail/internal/sim"
)

// E1PollsPerRetrieval validates §5's headline claim: "the number of polls
// per retrieval request is approximately one under normal conditions", by
// sweeping the per-round server-failure probability and comparing the
// paper's GetMail against the poll-all baseline.
func E1PollsPerRetrieval() Result {
	t := obs.NewTable("E1: polls per retrieval, GetMail vs poll-all (3 authority servers)",
		"FailureProb", "GetMailPolls/Chk", "PollAllPolls/Chk", "GetMailRecv", "PollAllRecv")
	const rounds = 200
	var steady float64
	for _, p := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		_, recvG, pollsG, checksG := retrievalRun(1, rounds, p, false)
		_, recvP, pollsP, checksP := retrievalRun(1, rounds, p, true)
		gm := float64(pollsG) / float64(checksG)
		pa := float64(pollsP) / float64(checksP)
		if p == 0 {
			steady = gm
		}
		t.AddRow(fmt.Sprintf("%.2f", p), gm, pa, recvG, recvP)
	}
	return Result{
		ID:    "e1",
		Title: "GetMail issues ≈1 poll per retrieval under normal conditions (§3.1.2c, §5)",
		Table: t,
		Notes: []string{
			fmt.Sprintf("failure-free GetMail: %.3f polls per retrieval (cold start amortized); poll-all is pinned at 3", steady),
			"GetMail's polls rise with failure probability but stay below poll-all across the sweep",
		},
	}
}

// E2NoLoss validates §5's "no messages will be lost even when some servers
// fail": under heavy randomized churn every accepted submission is
// eventually retrieved exactly once.
func E2NoLoss() Result {
	t := obs.NewTable("E2: no message loss under server failures (p=0.3, 120 rounds)",
		"Seed", "Sent", "Received", "Lost")
	lostTotal := 0
	for seed := int64(0); seed < 6; seed++ {
		sent, received, _, _ := retrievalRun(seed, 120, 0.3, false)
		lost := sent - received
		lostTotal += lost
		t.AddRow(seed, sent, received, lost)
	}
	return Result{
		ID:    "e2",
		Title: "GetMail + deposit retries lose no accepted mail (§3.1.2c, §5)",
		Table: t,
		Notes: []string{
			fmt.Sprintf("total lost messages across all seeds: %d (paper's guarantee: 0)", lostTotal),
			"duplicates created by deposit retries are suppressed by mailbox and agent dedup",
		},
	}
}

// E3BalancingConvergence measures the §3.1.1 balancing procedure against
// the nearest-server initialization on growing random instances, plus the
// paper's batched-move speedup.
func E3BalancingConvergence() Result {
	t := obs.NewTable("E3: balancing vs nearest-server initialization",
		"Instance", "NearCost", "BalCost", "Improve%", "NearMaxU", "BalMaxU", "Sweeps", "Moves", "BatchMoves")
	type inst struct {
		name           string
		hosts, servers int
		seed           int64
	}
	instances := []inst{
		{"fig1 (6h/3s)", 0, 0, 0}, // the paper example, handled specially
		{"rand 12h/4s", 12, 4, 21},
		{"rand 24h/6s", 24, 6, 22},
		{"rand 48h/8s", 48, 8, 23},
	}
	notes := []string{}
	for _, in := range instances {
		var cfg assign.Config
		if in.hosts == 0 {
			a, _ := figure1Assignment()
			cfg = configOf(a)
		} else {
			cfg = randomAssignConfig(in.hosts, in.servers, in.seed)
		}
		near, err := assign.New(cfg)
		if err != nil {
			panic(err)
		}
		near.Initialize()
		nearCost, nearMaxU := near.TotalCost(), near.MaxUtilization()

		bal, _ := assign.New(cfg)
		bal.Initialize()
		stats := bal.Balance()

		batchCfg := cfg
		batchCfg.MoveBatch = 10
		batch, _ := assign.New(batchCfg)
		bStats := batch.Run()

		improve := 100 * (nearCost - bal.TotalCost()) / nearCost
		t.AddRow(in.name, nearCost, bal.TotalCost(), improve,
			nearMaxU, bal.MaxUtilization(), stats.Sweeps, stats.Moves, bStats.Moves)
		if len(stats.Overloaded) > 0 {
			notes = append(notes, fmt.Sprintf("%s: servers remain overloaded (capacity insufficient)", in.name))
		}
	}
	notes = append(notes,
		"balancing always lowers total connection cost and maximum utilisation vs nearest-only",
		"the paper's multi-user-per-move variant (batch=10) converges with far fewer accepted moves")
	return Result{
		ID:    "e3",
		Title: "Server-assignment balancing: convergence and cost (§3.1.1)",
		Table: t,
		Notes: notes,
	}
}

// configOf rebuilds the Figure 1 config (assign keeps its own copy, so the
// fixture helper cannot be reused directly across instances).
func configOf(*assign.Assignment) assign.Config {
	ex := graph.Figure1()
	commW, procW, procTime := assign.PaperWeights()
	maxLoad := make(map[graph.NodeID]int)
	for _, s := range ex.Servers {
		maxLoad[s] = 100
	}
	return assign.Config{
		Topology: ex.G, Hosts: ex.Hosts, Servers: ex.Servers,
		Users: ex.Users, MaxLoad: maxLoad,
		ProcTime: procTime, CommW: commW, ProcW: procW,
	}
}

// randomAssignConfig builds a random single-region instance with a skewed
// user distribution.
func randomAssignConfig(hosts, servers int, seed int64) assign.Config {
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomConnected(rng, hosts+servers, (hosts+servers)/2, 1)
	ids := g.NodeIDs()
	srv := ids[:servers]
	hst := ids[servers:]
	users := make(map[graph.NodeID]int, len(hst))
	total := 0
	for _, h := range hst {
		n := 5 + rng.Intn(60)
		users[h] = n
		total += n
	}
	maxLoad := make(map[graph.NodeID]int, len(srv))
	for _, s := range srv {
		maxLoad[s] = total/servers + total/(3*servers)
	}
	commW, procW, procTime := assign.PaperWeights()
	return assign.Config{
		Topology: g, Hosts: hst, Servers: srv,
		Users: users, MaxLoad: maxLoad,
		ProcTime: procTime, CommW: commW, ProcW: procW,
	}
}

// E4BroadcastCost compares mass distribution over the back-bone MST against
// per-node unicast flooding (§3.3.1-A: the naive search "sends messages to
// all servers in the system ... the performance of the system will be
// poor").
func E4BroadcastCost() Result {
	t := obs.NewTable("E4: broadcast traffic cost, back-bone MST vs unicast flood",
		"Topology", "Nodes", "TreeCost", "FloodCost", "Flood/Tree")
	notes := []string{}
	for _, spec := range []struct {
		name    string
		regions int
		nodes   int
		seed    int64
	}{
		{"2 regions × 5", 2, 5, 31},
		{"4 regions × 6", 4, 6, 32},
		{"6 regions × 8", 6, 8, 33},
		{"8 regions × 10", 8, 10, 34},
	} {
		rng := rand.New(rand.NewSource(spec.seed))
		g := graph.MultiRegion(rng, graph.MultiRegionSpec{
			Regions: spec.regions, NodesPerRegion: spec.nodes,
			ExtraIntra: spec.nodes / 2, InterLinks: 2,
		})
		res, err := mst.Backbone(g, false)
		if err != nil {
			panic(err)
		}
		origin := g.NodeIDs()[0]

		// Tree broadcast+convergecast: measured on a live simulated run.
		net := netsim.New(sim.New(spec.seed), g)
		bt, err := broadcast.Setup(broadcast.Config{Net: net, Tree: res.Combined})
		if err != nil {
			panic(err)
		}
		if _, err := bt.Start(origin, "blast", nil); err != nil {
			panic(err)
		}
		net.Scheduler().Run()
		treeCost := float64(net.Stats().Get("cost_milli")) / 1000

		// Flood: unicast out + unicast response per node.
		paths, err := g.ShortestPaths(origin)
		if err != nil {
			panic(err)
		}
		floodCost := 0.0
		for _, id := range g.NodeIDs() {
			if id != origin {
				floodCost += 2 * paths.Dist[id]
			}
		}
		ratio := floodCost / treeCost
		t.AddRow(spec.name, g.NumNodes(), treeCost, floodCost, ratio)
		if ratio <= 1 {
			notes = append(notes, fmt.Sprintf("%s: flooding unexpectedly cheaper (ratio %.2f)", spec.name, ratio))
		}
	}
	notes = append(notes,
		"the MST wins at every size and the gap widens with scale — the shape §3.3.1-A predicts",
		"tree cost = 2×(combined tree weight): each tree edge carries one query down and one summary up")
	return Result{
		ID:    "e4",
		Title: "Back-bone MST broadcast beats flooding in total traffic (§3.3.1-A)",
		Table: t,
		Notes: notes,
	}
}

// E5GHSCorrectness cross-checks the distributed GHS MST against Kruskal and
// the [GAL83] message bound 5·N·log2(N) + 2·E.
func E5GHSCorrectness() Result {
	t := obs.NewTable("E5: distributed GHS vs centralized Kruskal",
		"Seed", "Nodes", "Edges", "MSTWeight", "GHSWeight", "Messages", "GAL83Bound")
	mismatches := 0
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + int(seed)*5
		g := graph.RandomConnected(rng, n, n, 1)
		want, err := g.KruskalMST()
		if err != nil {
			panic(err)
		}
		net := netsim.New(sim.New(seed), g)
		alg, err := mst.New(net, g.NodeIDs())
		if err != nil {
			panic(err)
		}
		alg.Start()
		net.Scheduler().Run()
		tree, err := alg.Tree()
		if err != nil {
			panic(err)
		}
		if math.Abs(tree.Weight-want.Weight) > 1e-9 {
			mismatches++
		}
		bound := 5*float64(n)*math.Log2(float64(n)) + 2*float64(g.NumEdges())
		t.AddRow(seed, n, g.NumEdges(), want.Weight, tree.Weight, alg.Stats().Messages, math.Ceil(bound))
	}
	return Result{
		ID:    "e5",
		Title: "GHS computes the exact MST within its message bound ([GAL83], §3.3.1-A)",
		Table: t,
		Notes: []string{
			fmt.Sprintf("weight mismatches vs Kruskal: %d of 10 (expected 0)", mismatches),
			"protocol messages stay under the 5·N·log2N + 2·E exchange bound at every size",
		},
	}
}
