package experiments

import (
	"fmt"
	"math/rand"

	"github.com/largemail/largemail/internal/client"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/server"
	"github.com/largemail/largemail/internal/sim"
)

// retrievalWorld is the E1/E2 rig: one region, three authority servers, a
// receiving user (alice) with the full authority list, and a sending user
// (bob) on a separate host.
type retrievalWorld struct {
	sched   *sim.Scheduler
	net     *netsim.Network
	rng     *rand.Rand
	servers []graph.NodeID
	alice   *client.Agent
	bob     *client.Agent
}

var (
	rwAlice = names.MustParse("R1.HA.alice")
	rwBob   = names.MustParse("R1.HB.bob")
)

func newRetrievalWorld(seed int64) *retrievalWorld {
	const (
		hA graph.NodeID = 1
		hB graph.NodeID = 2
		s1 graph.NodeID = 101
		s2 graph.NodeID = 102
		s3 graph.NodeID = 103
	)
	g := graph.New()
	g.MustAddNode(graph.Node{ID: hA, Label: "HA", Region: "R1", Kind: graph.KindHost})
	g.MustAddNode(graph.Node{ID: hB, Label: "HB", Region: "R1", Kind: graph.KindHost})
	for i, id := range []graph.NodeID{s1, s2, s3} {
		g.MustAddNode(graph.Node{ID: id, Label: fmt.Sprintf("S%d", i+1), Region: "R1", Kind: graph.KindServer})
	}
	g.MustAddEdge(hA, s1, 1)
	g.MustAddEdge(hB, s2, 1)
	g.MustAddEdge(s1, s2, 1)
	g.MustAddEdge(s2, s3, 1)

	sched := sim.New(seed)
	net := netsim.New(sched, g)
	dir := server.NewDirectory("R1")
	regions := server.NewRegionMap()
	servers := []graph.NodeID{s1, s2, s3}
	srvs := make(map[graph.NodeID]*server.Server, 3)
	for _, id := range servers {
		srv, err := server.New(server.Config{
			ID: id, Region: "R1", Net: net, Dir: dir, Regions: regions,
		})
		if err != nil {
			panic(err)
		}
		srvs[id] = srv
	}
	if err := dir.SetAuthority(rwAlice, servers); err != nil {
		panic(err)
	}
	if err := dir.SetAuthority(rwBob, []graph.NodeID{s2, s3, s1}); err != nil {
		panic(err)
	}
	hostA, err := client.NewHost(net, hA)
	if err != nil {
		panic(err)
	}
	hostB, err := client.NewHost(net, hB)
	if err != nil {
		panic(err)
	}
	lookup := func(id graph.NodeID) *server.Server { return srvs[id] }
	alice, err := client.NewAgent(rwAlice, hostA, lookup, servers)
	if err != nil {
		panic(err)
	}
	bob, err := client.NewAgent(rwBob, hostB, lookup, []graph.NodeID{s2, s3, s1})
	if err != nil {
		panic(err)
	}
	return &retrievalWorld{
		sched: sched, net: net, rng: rand.New(rand.NewSource(seed)),
		servers: servers, alice: alice, bob: bob,
	}
}

// churn crashes/recovers alice's authority servers with per-server
// probability p, always keeping at least one up (the paper's liveness
// assumption).
func (w *retrievalWorld) churn(p float64) {
	anyUp := false
	for _, id := range w.servers {
		if w.rng.Float64() < p {
			w.net.Crash(id)
		} else {
			w.net.Recover(id)
			anyUp = true
		}
	}
	if !anyUp {
		w.net.Recover(w.servers[w.rng.Intn(len(w.servers))])
	}
}

// recoverAll brings every server back up.
func (w *retrievalWorld) recoverAll() {
	for _, id := range w.servers {
		w.net.Recover(id)
	}
}

// send has bob submit one message to alice; it reports whether a server
// accepted the submission.
func (w *retrievalWorld) send() bool {
	_, err := w.bob.Send([]names.Name{rwAlice}, "s", "b")
	return err == nil
}

// retrievalRun drives rounds of churn+send+retrieve and returns (sent,
// received, polls, retrievals) where retrieve is GetMail or PollAll.
func retrievalRun(seed int64, rounds int, p float64, pollAll bool) (sent, received, polls, retrievals int) {
	w := newRetrievalWorld(seed)
	retrieve := w.alice.GetMail
	if pollAll {
		retrieve = w.alice.PollAll
	}
	for r := 0; r < rounds; r++ {
		w.churn(p)
		if w.send() {
			sent++
		}
		w.sched.RunFor(40 * sim.Unit)
		retrieve()
	}
	// Settle: recover everything, let retries finish, drain twice (the
	// second pass clears PreviouslyUnavailableServers stragglers).
	w.recoverAll()
	w.sched.RunFor(400 * sim.Unit)
	w.sched.Run()
	retrieve()
	retrieve()
	st := w.alice.Stats()
	return sent, st.Received, st.Polls, st.Retrievals
}
