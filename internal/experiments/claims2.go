package experiments

import (
	"fmt"
	"strings"

	"github.com/largemail/largemail/internal/attr"
	"github.com/largemail/largemail/internal/broadcast"
	"github.com/largemail/largemail/internal/core"
	"github.com/largemail/largemail/internal/evalsys"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mst"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/obs"
	"github.com/largemail/largemail/internal/sim"
)

// E6ConvergecastFailures validates §3.3.1-B's failure handling: "a parent
// node should time out if it waits for a certain period of time and the
// unavailable estimates can be marked so."
func E6ConvergecastFailures() Result {
	t := obs.NewTable("E6: convergecast under node failures (Fig. 2 topology, query from node 1)",
		"CrashedNodes", "NodesReached", "ItemsCollected", "MarkedUnavailable")
	scenarios := []struct {
		name    string
		crashed []graph.NodeID
	}{
		{"none", nil},
		{"13 (B-C bridge)", []graph.NodeID{13}},
		{"12, 22 (two interior)", []graph.NodeID{12, 22}},
	}
	g := figure2Topology()
	total := g.NumNodes()
	for _, sc := range scenarios {
		res, err := mstBroadcastRun(g, sc.crashed)
		if err != nil {
			panic(err)
		}
		t.AddRow(sc.name, res.Nodes, len(res.Items), fmt.Sprintf("%v", res.Unavailable))
	}
	return Result{
		ID:    "e6",
		Title: "Convergecast completes despite dead children, marking them unavailable (§3.3.1-B)",
		Table: t,
		Notes: []string{
			fmt.Sprintf("failure-free query reaches all %d nodes with no unavailability marks", total),
			"crashing a node cuts off exactly its subtree; the parent times out and marks it",
		},
	}
}

// mstBroadcastRun runs one broadcast over the topology's back-bone tree
// with the given nodes crashed; each node contributes one item.
func mstBroadcastRun(g *graph.Graph, crashed []graph.NodeID) (broadcast.Summary, error) {
	res, err := backboneOf(g)
	if err != nil {
		return broadcast.Summary{}, err
	}
	net := netsim.New(sim.New(41), g)
	bt, err := broadcast.Setup(broadcast.Config{
		Net: net, Tree: res, Timeout: 20 * sim.Unit,
		Eval: func(id graph.NodeID, q any) []any { return []any{id} },
	})
	if err != nil {
		return broadcast.Summary{}, err
	}
	for _, id := range crashed {
		net.Crash(id)
	}
	qid, err := bt.Start(1, "q", nil)
	if err != nil {
		return broadcast.Summary{}, err
	}
	net.Scheduler().Run()
	sum, ok := bt.Result(qid)
	if !ok {
		return broadcast.Summary{}, fmt.Errorf("experiments: no result")
	}
	return sum, nil
}

func backboneOf(g *graph.Graph) (graph.Tree, error) {
	res, err := mst.Backbone(g, false)
	if err != nil {
		return graph.Tree{}, err
	}
	return res.Combined, nil
}

// E7RoamingOverhead validates §3.2.2c: "this scheme is the same as the
// previous system if the user does not move. Overhead is only incurred if a
// user moves to other locations other than his primary location."
func E7RoamingOverhead() Result {
	const deliveries = 10
	run := func(roam bool) (consults, probes, msgs int64) {
		ex := graph.Figure1()
		users := map[graph.NodeID][]string{
			ex.Hosts[0]: {"alice"},
			ex.Hosts[1]: {"bob"},
		}
		s, err := core.NewLocation(core.LocationConfig{
			Topology: ex.G, Region: "R1", UsersPerHost: users, Seed: 51,
		})
		if err != nil {
			panic(err)
		}
		alice, _ := s.Agent(names.MustParse("R1.H1.alice"))
		bob, _ := s.Agent(names.MustParse("R1.H2.bob"))
		if roam {
			if err := alice.MoveTo(ex.Hosts[5]); err != nil {
				panic(err)
			}
		}
		if err := alice.Login(); err != nil {
			panic(err)
		}
		s.Run()
		before := s.Net.Stats().Get("delivered")
		for i := 0; i < deliveries; i++ {
			if err := bob.Send([]names.Name{alice.User()}, "m", "b"); err != nil {
				panic(err)
			}
			s.Run()
		}
		st := s.Sys.Stats()
		return st.Get("consultations"), st.Get("notify_probe_primary"),
			s.Net.Stats().Get("delivered") - before
	}
	homeC, homeP, homeM := run(false)
	roamC, roamP, roamM := run(true)
	t := obs.NewTable("E7: delivery overhead, user at primary vs roaming (10 deliveries)",
		"Scenario", "Consultations", "PrimaryProbes", "NetMessages", "Msgs/Delivery")
	t.AddRow("at primary", homeC, homeP, homeM, float64(homeM)/deliveries)
	t.AddRow("roaming", roamC, roamP, roamM, float64(roamM)/deliveries)
	return Result{
		ID:    "e7",
		Title: "Location tracking costs nothing until the user roams (§3.2.2c)",
		Table: t,
		Notes: []string{
			fmt.Sprintf("at primary: %d consultations (the §3.2.2c fast path)", homeC),
			fmt.Sprintf("roaming: %d consultations + %d probes — the only added traffic", roamC, roamP),
		},
	}
}

// E8MigrationOverhead compares migration in the two designs (§3.1.4 vs
// §3.2.4): renames, redirect traffic, and continued delivery.
func E8MigrationOverhead() Result {
	t := obs.NewTable("E8: user migration, syntax-directed vs location-independent",
		"Design", "Renames", "RedirectedMsgs", "FollowUpDelivered")

	// Syntax-directed: cross-region migration with redirect.
	{
		ex := graph.Figure1()
		g := ex.G
		h7 := graph.HostBase + 7
		s4 := graph.ServerBase + 4
		g.MustAddNode(graph.Node{ID: h7, Label: "H7", Region: "R2", Kind: graph.KindHost})
		g.MustAddNode(graph.Node{ID: s4, Label: "S4", Region: "R2", Kind: graph.KindServer})
		g.MustAddEdge(s4, ex.Servers[2], 2)
		g.MustAddEdge(h7, s4, 1)
		users := map[graph.NodeID][]string{
			ex.Hosts[0]: {"mover"},
			ex.Hosts[1]: {"sender"},
			h7:          {"resident"},
		}
		s, err := core.NewSyntax(core.SyntaxConfig{Topology: g, UsersPerHost: users, Seed: 61})
		if err != nil {
			panic(err)
		}
		old := names.MustParse("R1.H1.mover")
		newName, err := s.MigrateUser(old, h7)
		if err != nil {
			panic(err)
		}
		sender := names.MustParse("R1.H2.sender")
		for i := 0; i < 5; i++ {
			if err := s.Send(sender, []names.Name{old}, "follow", "b"); err != nil {
				panic(err)
			}
		}
		s.Run()
		agent, _ := s.Agent(newName)
		delivered := len(agent.GetMail())
		var redirects int64
		for _, id := range s.Servers() {
			srv, _ := s.Server(id)
			redirects += srv.Stats().Get("redirects")
		}
		t.AddRow("syntax-directed (§3.1.4)", 1, redirects, delivered)
	}

	// Location-independent: intra-region move, no rename, no redirect.
	{
		ex := graph.Figure1()
		users := map[graph.NodeID][]string{
			ex.Hosts[0]: {"mover"},
			ex.Hosts[1]: {"sender"},
		}
		s, err := core.NewLocation(core.LocationConfig{
			Topology: ex.G, Region: "R1", UsersPerHost: users, Seed: 62,
		})
		if err != nil {
			panic(err)
		}
		mover := names.MustParse("R1.H1.mover")
		if err := s.MigrateUser(mover, graph.HostBase+5); err != nil {
			panic(err)
		}
		s.Run()
		sender, _ := s.Agent(names.MustParse("R1.H2.sender"))
		for i := 0; i < 5; i++ {
			if err := sender.Send([]names.Name{mover}, "follow", "b"); err != nil {
				panic(err)
			}
		}
		s.Run()
		agent, _ := s.Agent(mover)
		delivered := len(agent.GetMail())
		t.AddRow("location-independent (§3.2.4)", 0, 0, delivered)
	}

	return Result{
		ID:    "e8",
		Title: "Migration: renames + redirects vs free intra-region movement (§3.1.4, §3.2.4)",
		Table: t,
		Notes: []string{
			"syntax-directed migration renames the user and forwards old-name mail through a redirect",
			"location-independent movement needs no rename and no redirect; delivery is unchanged",
		},
	}
}

// attributeFixture builds the Figure-2 topology with four profiles per node.
func attributeFixture() (*core.AttributeSystem, *graph.Graph) {
	g := figure2Topology()
	profiles := make(map[graph.NodeID][]*attr.Profile)
	orgs := []string{"acme", "globex", "initech"}
	skills := []string{"mail systems", "databases", "networks", "operating systems"}
	i := 0
	for _, n := range g.Nodes() {
		var ps []*attr.Profile
		for k := 0; k < 4; k++ {
			u := names.Name{Region: strings.ToLower(n.Region), Host: fmt.Sprintf("h%d", n.ID), User: fmt.Sprintf("user%d", i)}
			p := &attr.Profile{User: u}
			p.Add(attr.TypeName, fmt.Sprintf("User Number%d", i), attr.Public)
			p.Add(attr.TypeOrganization, orgs[i%len(orgs)], attr.Public)
			p.Add(attr.TypeExpertise, skills[i%len(skills)], attr.Public)
			if i == 7 {
				// One user carries a distinctive alias for the §3.3-i
				// misspelled-directory-look-up experiment.
				p.Add(attr.TypeAlias, "zephyrinus", attr.Public)
			}
			ps = append(ps, p)
			i++
		}
		profiles[n.ID] = ps
	}
	s, err := core.NewAttribute(core.AttributeConfig{Topology: g, Profiles: profiles, Seed: 71})
	if err != nil {
		panic(err)
	}
	return s, g
}

// E9CostTableAccuracy validates the §3.3.1-B flow-control estimate: the
// per-region cost table predicts the traffic a targeted broadcast incurs.
func E9CostTableAccuracy() Result {
	s, _ := attributeFixture()
	rows, err := s.CostTable("A")
	if err != nil {
		panic(err)
	}
	q := attr.Query{Predicates: []attr.Predicate{{Type: attr.TypeExpertise, Op: attr.OpPrefix, Pattern: "mail"}}}
	t := obs.NewTable("E9: §3.3.1-B cost table vs measured targeted-broadcast traffic (source region A)",
		"TargetRegion", "EstTotal", "MeasuredCost", "Measured/Est")
	notes := []string{}
	for _, row := range rows {
		res, err := s.Search(1, q, map[string]bool{row.Region: true})
		if err != nil {
			panic(err)
		}
		ratio := 0.0
		if row.Total > 0 {
			ratio = res.TrafficCost / row.Total
		}
		t.AddRow(row.Region, row.Total, res.TrafficCost, ratio)
		notes = append(notes, fmt.Sprintf("region %s: %d matches from %d nodes", row.Region, len(res.Matches), res.NodesSearched))
	}
	notes = append(notes,
		"measured ≈ 2× the one-way estimate (query down + summary up), plus transit edges through intermediate regions",
		"estimates rank regions in the same order as measured costs — the property budget selection needs")
	return Result{
		ID:    "e9",
		Title: "Cost-estimation table predicts broadcast charges (§3.3.1-B)",
		Table: t,
		Notes: notes,
	}
}

// E10AttributeSelectivity sweeps query selectivity: traffic and matches for
// directory look-up and mass-distribution style queries (§3.3).
func E10AttributeSelectivity() Result {
	s, g := attributeFixture()
	t := obs.NewTable("E10: attribute search selectivity (40 profiles across 10 nodes)",
		"Query", "Matches", "NodesSearched", "TreeCost", "FloodCost")
	queries := []struct {
		name string
		q    attr.Query
	}{
		{"alias fuzzy 'zephyrinos'", attr.Query{Predicates: []attr.Predicate{
			{Type: attr.TypeAlias, Op: attr.OpFuzzy, Pattern: "zephyrinos"}}}},
		{"org = acme", attr.Query{Predicates: []attr.Predicate{
			{Type: attr.TypeOrganization, Op: attr.OpEquals, Pattern: "acme"}}}},
		{"expertise prefix 'mail'", attr.Query{Predicates: []attr.Predicate{
			{Type: attr.TypeExpertise, Op: attr.OpPrefix, Pattern: "mail"}}}},
		{"org one-of acme|globex", attr.Query{Predicates: []attr.Predicate{
			{Type: attr.TypeOrganization, Op: attr.OpOneOf, Pattern: "acme|globex"}}}},
	}
	for _, qc := range queries {
		tree, err := s.Search(1, qc.q, nil)
		if err != nil {
			panic(err)
		}
		flood, err := s.FloodSearch(1, qc.q)
		if err != nil {
			panic(err)
		}
		t.AddRow(qc.name, len(tree.Matches), tree.NodesSearched, tree.TrafficCost, flood.TrafficCost)
	}
	_ = g
	return Result{
		ID:    "e10",
		Title: "Directory look-up and selective search by attributes (§3.3)",
		Table: t,
		Notes: []string{
			"the misspelled fuzzy name look-up resolves to exactly one user (§3.3-i)",
			"tree search always answers with flooding's matches at lower traffic cost",
		},
	}
}

// E11CriteriaComparison scores the syntax-directed and location-independent
// designs on the same workload against the §4 criteria.
func E11CriteriaComparison() Result {
	workloadRounds := 8

	// Syntax-directed run.
	ex := graph.Figure1()
	usersS := map[graph.NodeID][]string{
		ex.Hosts[0]: {"u1"}, ex.Hosts[1]: {"u2"}, ex.Hosts[2]: {"u3"},
	}
	syntax, err := core.NewSyntax(core.SyntaxConfig{Topology: ex.G, UsersPerHost: usersS, Seed: 81})
	if err != nil {
		panic(err)
	}
	u1 := names.MustParse("R1.H1.u1")
	u2 := names.MustParse("R1.H2.u2")
	for i := 0; i < workloadRounds; i++ {
		if err := syntax.Send(u1, []names.Name{u2}, "w", "b"); err != nil {
			panic(err)
		}
		syntax.Run()
		a, _ := syntax.Agent(u2)
		a.GetMail()
	}
	// One intra-region migration, which the syntax-directed design can only
	// do by renaming (§3.1.4).
	if _, err := syntax.MigrateUser(names.MustParse("R1.H3.u3"), graph.HostBase+4); err != nil {
		panic(err)
	}
	syntax.Run()
	repS := syntax.Evaluate()

	// Location-independent run (same shape of workload, with roaming).
	ex2 := graph.Figure1()
	usersL := map[graph.NodeID][]string{
		ex2.Hosts[0]: {"u1"}, ex2.Hosts[1]: {"u2"}, ex2.Hosts[2]: {"u3"},
	}
	loc, err := core.NewLocation(core.LocationConfig{Topology: ex2.G, Region: "R1", UsersPerHost: usersL, Seed: 82})
	if err != nil {
		panic(err)
	}
	l1 := names.MustParse("R1.H1.u1")
	l2 := names.MustParse("R1.H2.u2")
	if err := loc.MigrateUser(l2, graph.HostBase+6); err != nil {
		panic(err)
	}
	loc.Run()
	a1, _ := loc.Agent(l1)
	a2, _ := loc.Agent(l2)
	for i := 0; i < workloadRounds; i++ {
		if err := a1.Send([]names.Name{l2}, "w", "b"); err != nil {
			panic(err)
		}
		loc.Run()
		a2.GetMail()
	}
	repL := loc.Evaluate()

	w := evalsys.DefaultWeights()
	t := obs.NewTable("E11: §4 criteria, syntax-directed vs location-independent (same workload)",
		"Measure", "SyntaxDirected", "LocationIndependent")
	t.AddRow("delivered rate", repS.Reliability.DeliveredRate, repL.Reliability.DeliveredRate)
	t.AddRow("polls per retrieval", repS.Efficiency.MeanPollsPerCheck, repL.Efficiency.MeanPollsPerCheck)
	t.AddRow("traffic cost", repS.Cost.TotalTrafficCost, repL.Cost.TotalTrafficCost)
	t.AddRow("renames per migration", repS.Flexibility.RenamesPerMigration, repL.Flexibility.RenamesPerMigration)
	t.AddRow("roaming", repS.Flexibility.RoamingSupported, repL.Flexibility.RoamingSupported)
	t.AddRow("score (equal weights)", repS.Score(w), repL.Score(w))
	return Result{
		ID:    "e11",
		Title: "Evaluating the designs against the §4 criteria",
		Table: t,
		Notes: []string{
			"both designs deliver everything; the location-independent design buys flexibility (roaming, no renames) with tracking traffic",
			"per §4: 'it is necessary ... to weigh different alternatives and strike a balance'",
		},
		Text: repS.Render() + repL.Render(),
	}
}
