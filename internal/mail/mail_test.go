package mail

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/sim"
)

var owner = names.MustParse("east.h1.alice")

func msg(seq uint64, body string) Message {
	return Message{
		ID:      MessageID{Node: 101, Seq: seq},
		From:    names.MustParse("west.h2.bob"),
		To:      []names.Name{owner},
		Subject: "s",
		Body:    body,
	}
}

func TestMessageIDString(t *testing.T) {
	id := MessageID{Node: 7, Seq: 42}
	if id.String() != "m7-42" {
		t.Errorf("String() = %q", id.String())
	}
	if id.IsZero() {
		t.Error("non-zero ID reported zero")
	}
	if !(MessageID{}).IsZero() {
		t.Error("zero ID not reported zero")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusComposed: "composed", StatusSubmitted: "submitted",
		StatusRelayed: "relayed", StatusBuffered: "buffered",
		StatusDelivered: "delivered", StatusRead: "read",
		Status(99): "Status(99)",
	} {
		if s.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestDepositAndDrain(t *testing.T) {
	b := NewMailbox(owner)
	if b.Owner() != owner {
		t.Errorf("Owner = %v", b.Owner())
	}
	if !b.Deposit(msg(1, "one"), 10) {
		t.Fatal("first deposit rejected")
	}
	if !b.Deposit(msg(2, "two"), 20) {
		t.Fatal("second deposit rejected")
	}
	if b.Len() != 2 {
		t.Errorf("Len = %d, want 2", b.Len())
	}
	if b.Bytes() != len("s")*2+len("one")+len("two") {
		t.Errorf("Bytes = %d", b.Bytes())
	}
	got := b.Drain()
	if len(got) != 2 || got[0].Body != "one" || got[1].Body != "two" {
		t.Errorf("Drain = %v", got)
	}
	if got[0].ArrivedAt != 10 || got[1].ArrivedAt != 20 {
		t.Errorf("arrival times = %v, %v", got[0].ArrivedAt, got[1].ArrivedAt)
	}
	if b.Len() != 0 || b.Bytes() != 0 {
		t.Error("mailbox not empty after Drain")
	}
}

func TestDuplicateSuppression(t *testing.T) {
	b := NewMailbox(owner)
	m := msg(1, "x")
	if !b.Deposit(m, 0) {
		t.Fatal("first deposit rejected")
	}
	if b.Deposit(m, 5) {
		t.Error("duplicate deposit accepted")
	}
	if b.Len() != 1 {
		t.Errorf("Len = %d, want 1", b.Len())
	}
	// Suppression survives Drain: a replayed message must not reappear.
	b.Drain()
	if b.Deposit(m, 9) {
		t.Error("re-deposit after drain accepted")
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	b := NewMailbox(owner)
	b.Deposit(msg(1, "x"), 0)
	p := b.Peek()
	if len(p) != 1 || b.Len() != 1 {
		t.Error("Peek removed or missed messages")
	}
	p[0].Body = "mutated"
	if b.Peek()[0].Body != "x" {
		t.Error("Peek exposed internal storage")
	}
}

func TestMarkRead(t *testing.T) {
	b := NewMailbox(owner)
	m := msg(1, "x")
	b.Deposit(m, 0)
	if !b.MarkRead(m.ID) {
		t.Error("MarkRead failed on present message")
	}
	if b.MarkRead(MessageID{Node: 9, Seq: 9}) {
		t.Error("MarkRead succeeded on absent message")
	}
	if !b.Peek()[0].Read {
		t.Error("message not marked read")
	}
}

func TestCleanupMaxMessages(t *testing.T) {
	b := NewMailbox(owner)
	for i := uint64(1); i <= 5; i++ {
		b.Deposit(msg(i, "x"), sim.Time(i))
	}
	evicted := b.Cleanup(Retention{MaxMessages: 3}, 100)
	if len(evicted) != 2 {
		t.Fatalf("evicted %d, want 2", len(evicted))
	}
	if evicted[0].ID.Seq != 1 || evicted[1].ID.Seq != 2 {
		t.Errorf("evicted wrong messages: %v", evicted)
	}
	if b.Len() != 3 {
		t.Errorf("Len = %d, want 3", b.Len())
	}
}

func TestCleanupMaxAge(t *testing.T) {
	b := NewMailbox(owner)
	b.Deposit(msg(1, "old"), 0)
	b.Deposit(msg(2, "new"), 90)
	evicted := b.Cleanup(Retention{MaxAge: 50}, 100)
	if len(evicted) != 1 || evicted[0].Body != "old" {
		t.Errorf("evicted = %v", evicted)
	}
	if b.Len() != 1 || b.Peek()[0].Body != "new" {
		t.Error("kept wrong message")
	}
}

func TestCleanupReadOnly(t *testing.T) {
	b := NewMailbox(owner)
	m1, m2 := msg(1, "read"), msg(2, "unread")
	b.Deposit(m1, 0)
	b.Deposit(m2, 0)
	b.MarkRead(m1.ID)
	evicted := b.Cleanup(Retention{MaxAge: 10, ReadOnly: true}, 1000)
	if len(evicted) != 1 || evicted[0].ID != m1.ID {
		t.Errorf("evicted = %v, want only the read message", evicted)
	}
	if b.Len() != 1 {
		t.Errorf("Len = %d, want 1", b.Len())
	}
}

func TestCleanupNoPolicyKeepsAll(t *testing.T) {
	b := NewMailbox(owner)
	for i := uint64(1); i <= 4; i++ {
		b.Deposit(msg(i, "x"), 0)
	}
	if evicted := b.Cleanup(Retention{}, 1e9); len(evicted) != 0 {
		t.Errorf("no-limit policy evicted %d messages", len(evicted))
	}
	if b.Len() != 4 {
		t.Errorf("Len = %d, want 4", b.Len())
	}
}

func TestCleanupBytesAccounting(t *testing.T) {
	b := NewMailbox(owner)
	b.Deposit(msg(1, "aaaa"), 0)
	b.Deposit(msg(2, "bb"), 10)
	b.Cleanup(Retention{MaxMessages: 1}, 20)
	want := len("s") + len("bb")
	if b.Bytes() != want {
		t.Errorf("Bytes after cleanup = %d, want %d", b.Bytes(), want)
	}
}

// Property: deposit n distinct messages → Len == n, Drain returns them in
// arrival order, and total bytes match.
func TestPropertyDepositDrain(t *testing.T) {
	f := func(bodies []string) bool {
		b := NewMailbox(owner)
		wantBytes := 0
		for i, body := range bodies {
			if !b.Deposit(msg(uint64(i+1), body), sim.Time(i)) {
				return false
			}
			wantBytes += len("s") + len(body)
		}
		if b.Len() != len(bodies) || b.Bytes() != wantBytes {
			return false
		}
		got := b.Drain()
		for i := range got {
			if got[i].ID.Seq != uint64(i+1) {
				return false
			}
		}
		return b.Len() == 0
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMessageSize(t *testing.T) {
	m := Message{Subject: "abc", Body: "defg"}
	if m.Size() != 7 {
		t.Errorf("Size = %d, want 7", m.Size())
	}
}

func TestMultimediaParts(t *testing.T) {
	m := Message{Subject: "s", Body: "b"}
	data := []byte{1, 2, 3, 4}
	m.AddPart(ContentVoice, data)
	m.AddPart(ContentFacsimile, []byte{9})
	if m.PartsSize() != 5 {
		t.Errorf("PartsSize = %d, want 5", m.PartsSize())
	}
	if m.Size() != len("s")+len("b")+5 {
		t.Errorf("Size = %d", m.Size())
	}
	// AddPart copies: mutating the caller's buffer must not reach the part.
	data[0] = 99
	if m.Parts[0].Data[0] == 99 {
		t.Error("AddPart aliased caller's buffer")
	}
	if m.Parts[0].Type != ContentVoice || m.Parts[1].Type != ContentFacsimile {
		t.Errorf("part types = %v, %v", m.Parts[0].Type, m.Parts[1].Type)
	}
	// Mailbox byte accounting includes parts.
	b := NewMailbox(owner)
	m.ID = MessageID{Node: 1, Seq: 1}
	b.Deposit(m, 0)
	if b.Bytes() != m.Size() {
		t.Errorf("mailbox bytes = %d, want %d", b.Bytes(), m.Size())
	}
}
