// Package mail defines the message model of the mail systems: envelopes,
// message identifiers, per-user mailboxes with duplicate suppression, and
// the retention ("message archiving and clean-up", §3.1.2c) policy that
// protects server storage.
package mail

import (
	"fmt"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/sim"
)

// MessageID uniquely identifies a message: the node that accepted the
// submission plus a per-node sequence number.
type MessageID struct {
	Node graph.NodeID
	Seq  uint64
}

// String formats the ID as "m<node>-<seq>".
func (id MessageID) String() string { return fmt.Sprintf("m%d-%d", id.Node, id.Seq) }

// IsZero reports whether the ID is unset.
func (id MessageID) IsZero() bool { return id == MessageID{} }

// Status tracks a message through the delivery pipeline of §3.1.2.
type Status int

// Message statuses, in pipeline order.
const (
	StatusComposed  Status = iota + 1 // built by the user interface
	StatusSubmitted                   // accepted by a mail server
	StatusRelayed                     // forwarded toward the recipient's region/server
	StatusBuffered                    // stored at the recipient's authority server
	StatusDelivered                   // retrieved by the recipient's user interface
	StatusRead                        // read by the recipient
)

func (s Status) String() string {
	switch s {
	case StatusComposed:
		return "composed"
	case StatusSubmitted:
		return "submitted"
	case StatusRelayed:
		return "relayed"
	case StatusBuffered:
		return "buffered"
	case StatusDelivered:
		return "delivered"
	case StatusRead:
		return "read"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Message is a mail message: envelope plus content.
type Message struct {
	ID          MessageID
	From        names.Name
	To          []names.Name
	Subject     string
	Body        string
	SubmittedAt sim.Time
	// Expansions counts how many distribution-list expansions this copy
	// has been through; servers drop copies beyond a limit so cyclic group
	// definitions cannot loop mail forever.
	Expansions int
	// Parts carries optional typed multimedia content (§5 future work).
	Parts []Part
}

// Size is the accounted storage size of the message in bytes (content and
// typed parts; the envelope is bookkeeping).
func (m Message) Size() int { return len(m.Subject) + len(m.Body) + m.PartsSize() }

// Stored is a message held in a mailbox with its arrival metadata.
type Stored struct {
	Message
	ArrivedAt sim.Time
	Read      bool
}

// Mailbox is one user's message store at one server. Messages are kept in
// arrival order; duplicate deposits of the same MessageID are suppressed.
// The zero value is not usable; create with NewMailbox.
type Mailbox struct {
	owner names.Name
	msgs  []Stored
	seen  map[MessageID]bool
	bytes int
}

// NewMailbox returns an empty mailbox for the named user.
func NewMailbox(owner names.Name) *Mailbox {
	return &Mailbox{owner: owner, seen: make(map[MessageID]bool)}
}

// Owner returns the mailbox owner's name.
func (b *Mailbox) Owner() names.Name { return b.owner }

// Deposit stores a message, reporting whether it was newly stored (false
// for duplicates).
func (b *Mailbox) Deposit(m Message, at sim.Time) bool {
	if b.seen[m.ID] {
		return false
	}
	b.seen[m.ID] = true
	b.msgs = append(b.msgs, Stored{Message: m, ArrivedAt: at})
	b.bytes += m.Size()
	return true
}

// Len reports the number of stored messages.
func (b *Mailbox) Len() int { return len(b.msgs) }

// Bytes reports the accounted content bytes currently stored.
func (b *Mailbox) Bytes() int { return b.bytes }

// Peek returns the stored messages without removing them.
func (b *Mailbox) Peek() []Stored {
	return append([]Stored(nil), b.msgs...)
}

// Drain removes and returns all stored messages, in arrival order. The
// duplicate-suppression memory is retained so re-deposits of drained
// messages stay suppressed (a retrieved message must not reappear when a
// recovering server replays traffic).
func (b *Mailbox) Drain() []Stored {
	out := b.msgs
	b.msgs = nil
	b.bytes = 0
	return out
}

// MarkRead flags a stored message as read. It reports whether the message
// was present.
func (b *Mailbox) MarkRead(id MessageID) bool {
	for i := range b.msgs {
		if b.msgs[i].ID == id {
			b.msgs[i].Read = true
			return true
		}
	}
	return false
}

// Retention is the archiving/clean-up policy of §3.1.2c: "some policy of
// message archiving and clean-up must be implemented to protect the servers'
// storage from being used up". Zero fields disable the corresponding limit.
type Retention struct {
	MaxMessages int      // keep at most this many messages (oldest evicted first)
	MaxAge      sim.Time // evict messages older than this
	ReadOnly    bool     // only evict messages already read
}

// Cleanup applies the policy at virtual time now and returns the evicted
// messages (oldest first).
func (b *Mailbox) Cleanup(p Retention, now sim.Time) []Stored {
	var evicted []Stored
	evict := func(i int) bool {
		s := b.msgs[i]
		if p.ReadOnly && !s.Read {
			return false
		}
		evicted = append(evicted, s)
		b.bytes -= s.Size()
		return true
	}
	if p.MaxAge > 0 {
		kept := b.msgs[:0]
		for i := range b.msgs {
			if now-b.msgs[i].ArrivedAt > p.MaxAge && evict(i) {
				continue
			}
			kept = append(kept, b.msgs[i])
		}
		b.msgs = kept
	}
	if p.MaxMessages > 0 && len(b.msgs) > p.MaxMessages {
		over := len(b.msgs) - p.MaxMessages
		kept := b.msgs[:0]
		for i := range b.msgs {
			if over > 0 && evict(i) {
				over--
				continue
			}
			kept = append(kept, b.msgs[i])
		}
		b.msgs = kept
	}
	return evicted
}

// ContentType classifies a message part. §5 anticipates that "electronic
// mail systems should be able to transfer messages that consist of
// different forms of data such as voice, video, graphs, and facsimile";
// parts make the envelope carry them uniformly.
type ContentType string

// Content types from the paper's §5 list plus plain text.
const (
	ContentText      ContentType = "text"
	ContentVoice     ContentType = "voice"
	ContentVideo     ContentType = "video"
	ContentGraph     ContentType = "graph"
	ContentFacsimile ContentType = "facsimile"
)

// Part is one typed body part of a multimedia message.
type Part struct {
	Type ContentType
	Data []byte
}

// AddPart appends a typed part to the message, copying data.
func (m *Message) AddPart(t ContentType, data []byte) {
	m.Parts = append(m.Parts, Part{Type: t, Data: append([]byte(nil), data...)})
}

// PartsSize is the total byte size of all typed parts.
func (m Message) PartsSize() int {
	total := 0
	for _, p := range m.Parts {
		total += len(p.Data)
	}
	return total
}
