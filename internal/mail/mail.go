// Package mail defines the message model of the mail systems: envelopes,
// message identifiers, per-user mailboxes with duplicate suppression, and
// the retention ("message archiving and clean-up", §3.1.2c) policy that
// protects server storage.
package mail

import (
	"fmt"
	"sort"
	"strconv"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/sim"
)

// MessageID uniquely identifies a message: the node that accepted the
// submission plus a per-node sequence number.
type MessageID struct {
	Node graph.NodeID
	Seq  uint64
}

// String formats the ID as "m<node>-<seq>". Built with strconv, not fmt:
// the tracer stamps an ID string per pipeline stage, which put Sprintf on
// the wire hot path.
func (id MessageID) String() string {
	buf := make([]byte, 0, 24)
	buf = append(buf, 'm')
	buf = strconv.AppendInt(buf, int64(id.Node), 10)
	buf = append(buf, '-')
	buf = strconv.AppendUint(buf, id.Seq, 10)
	return string(buf)
}

// IsZero reports whether the ID is unset.
func (id MessageID) IsZero() bool { return id == MessageID{} }

// Status tracks a message through the delivery pipeline of §3.1.2.
type Status int

// Message statuses, in pipeline order.
const (
	StatusComposed  Status = iota + 1 // built by the user interface
	StatusSubmitted                   // accepted by a mail server
	StatusRelayed                     // forwarded toward the recipient's region/server
	StatusBuffered                    // stored at the recipient's authority server
	StatusDelivered                   // retrieved by the recipient's user interface
	StatusRead                        // read by the recipient
)

func (s Status) String() string {
	switch s {
	case StatusComposed:
		return "composed"
	case StatusSubmitted:
		return "submitted"
	case StatusRelayed:
		return "relayed"
	case StatusBuffered:
		return "buffered"
	case StatusDelivered:
		return "delivered"
	case StatusRead:
		return "read"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Message is a mail message: envelope plus content.
type Message struct {
	ID          MessageID
	From        names.Name
	To          []names.Name
	Subject     string
	Body        string
	SubmittedAt sim.Time
	// Expansions counts how many distribution-list expansions this copy
	// has been through; servers drop copies beyond a limit so cyclic group
	// definitions cannot loop mail forever.
	Expansions int
	// Parts carries optional typed multimedia content (§5 future work).
	Parts []Part
}

// Size is the accounted storage size of the message in bytes (content and
// typed parts; the envelope is bookkeeping).
func (m Message) Size() int { return len(m.Subject) + len(m.Body) + m.PartsSize() }

// Stored is a message held in a mailbox with its arrival metadata.
type Stored struct {
	Message
	ArrivedAt sim.Time
	Read      bool
}

// OpKind identifies a primitive mailbox mutation for journaling. Every
// public Mailbox mutation decomposes into these five primitives, which is
// what lets a durability layer log arbitrary Update closures without
// understanding them: it records what the closure *did*, not what it was.
type OpKind uint8

// Primitive mailbox mutations, in rough pipeline order.
const (
	OpDeposit  OpKind = iota + 1 // store one message (Msg, At, Read)
	OpDrain                      // remove all stored messages, keep seen-set
	OpMarkRead                   // flag stored messages read (IDs)
	OpEvict                      // remove stored messages by ID, keep seen-set (IDs)
	OpSuppress                   // add IDs to the seen-set without storing (IDs)
)

// Op is one primitive mailbox mutation, the unit of the durability journal.
// Replaying a mailbox's ops in order against an empty mailbox reproduces its
// exact state: stored messages in arrival order, read flags, and the
// duplicate-suppression memory.
type Op struct {
	Kind OpKind
	Msg  Message     // OpDeposit: the stored message
	At   sim.Time    // OpDeposit: arrival time
	Read bool        // OpDeposit: already read (snapshot replay)
	IDs  []MessageID // OpMarkRead, OpEvict, OpSuppress
}

// Mailbox is one user's message store at one server. Messages are kept in
// arrival order; duplicate deposits of the same MessageID are suppressed.
// The zero value is not usable; create with NewMailbox.
type Mailbox struct {
	owner names.Name
	msgs  []Stored
	seen  map[MessageID]bool
	bytes int

	journaling bool
	journal    []Op
}

// NewMailbox returns an empty mailbox for the named user.
func NewMailbox(owner names.Name) *Mailbox {
	return &Mailbox{owner: owner, seen: make(map[MessageID]bool)}
}

// Owner returns the mailbox owner's name.
func (b *Mailbox) Owner() names.Name { return b.owner }

// EnableJournal turns on op journaling: every state-changing mutation from
// here on is recorded as an Op until collected with TakeOps. No-op mutations
// (duplicate deposits, empty drains, misses) are not journaled.
func (b *Mailbox) EnableJournal() { b.journaling = true }

// TakeOps returns and clears the journaled ops accumulated since the last
// call. The caller owns the returned slice.
func (b *Mailbox) TakeOps() []Op {
	ops := b.journal
	b.journal = nil
	return ops
}

// Deposit stores a message, reporting whether it was newly stored (false
// for duplicates).
func (b *Mailbox) Deposit(m Message, at sim.Time) bool {
	if b.seen[m.ID] {
		return false
	}
	b.seen[m.ID] = true
	b.msgs = append(b.msgs, Stored{Message: m, ArrivedAt: at})
	b.bytes += m.Size()
	if b.journaling {
		b.journal = append(b.journal, Op{Kind: OpDeposit, Msg: m, At: at})
	}
	return true
}

// Len reports the number of stored messages.
func (b *Mailbox) Len() int { return len(b.msgs) }

// Bytes reports the accounted content bytes currently stored.
func (b *Mailbox) Bytes() int { return b.bytes }

// Peek returns the stored messages without removing them.
func (b *Mailbox) Peek() []Stored {
	return append([]Stored(nil), b.msgs...)
}

// Drain removes and returns all stored messages, in arrival order. The
// duplicate-suppression memory is retained so re-deposits of drained
// messages stay suppressed (a retrieved message must not reappear when a
// recovering server replays traffic).
func (b *Mailbox) Drain() []Stored {
	out := b.msgs
	if b.journaling && len(out) > 0 {
		b.journal = append(b.journal, Op{Kind: OpDrain})
	}
	b.msgs = nil
	b.bytes = 0
	return out
}

// MarkRead flags a stored message as read. It reports whether the message
// was present.
func (b *Mailbox) MarkRead(id MessageID) bool {
	for i := range b.msgs {
		if b.msgs[i].ID == id {
			b.msgs[i].Read = true
			if b.journaling {
				b.journal = append(b.journal, Op{Kind: OpMarkRead, IDs: []MessageID{id}})
			}
			return true
		}
	}
	return false
}

// Forget removes an ID from the duplicate-suppression memory. Migration-style
// drains use it when a still-undelivered message leaves this mailbox for
// another server: the moving copy must stay depositable here, or a later
// reconfiguration routing it back would swallow it as a duplicate. Not
// journaled — callers that persist mailboxes must not combine it with
// journaling. It reports whether the ID was present.
func (b *Mailbox) Forget(id MessageID) bool {
	if !b.seen[id] {
		return false
	}
	delete(b.seen, id)
	return true
}

// Suppress adds an ID to the duplicate-suppression memory without storing a
// message, reporting whether the ID was new. Snapshots use it to persist the
// seen-set of drained messages separately from the stored ones.
func (b *Mailbox) Suppress(id MessageID) bool {
	if b.seen[id] {
		return false
	}
	b.seen[id] = true
	if b.journaling {
		b.journal = append(b.journal, Op{Kind: OpSuppress, IDs: []MessageID{id}})
	}
	return true
}

// Remove evicts stored messages by ID, retaining the duplicate-suppression
// memory, and reports how many were present. It is the replay form of
// Cleanup's eviction: the policy decision was made once, at journaling time;
// replay only repeats its outcome.
func (b *Mailbox) Remove(ids ...MessageID) int {
	if len(ids) == 0 {
		return 0
	}
	drop := make(map[MessageID]bool, len(ids))
	for _, id := range ids {
		drop[id] = true
	}
	removed := 0
	var removedIDs []MessageID
	kept := b.msgs[:0]
	for i := range b.msgs {
		if drop[b.msgs[i].ID] {
			b.bytes -= b.msgs[i].Size()
			removed++
			removedIDs = append(removedIDs, b.msgs[i].ID)
			continue
		}
		kept = append(kept, b.msgs[i])
	}
	b.msgs = kept
	if b.journaling && removed > 0 {
		b.journal = append(b.journal, Op{Kind: OpEvict, IDs: removedIDs})
	}
	return removed
}

// SeenIDs returns the duplicate-suppression memory sorted by (Node, Seq), a
// deterministic order snapshots rely on.
func (b *Mailbox) SeenIDs() []MessageID {
	out := make([]MessageID, 0, len(b.seen))
	for id := range b.seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// MaxSeenSeq returns the highest sequence number attributed to node in the
// duplicate-suppression memory (0 if none) — the floor a restarted ID
// allocator must resume above, or a fresh message could reuse a delivered
// ID and be swallowed as a duplicate.
func (b *Mailbox) MaxSeenSeq(node graph.NodeID) uint64 {
	var maxSeq uint64
	for id := range b.seen {
		if id.Node == node && id.Seq > maxSeq {
			maxSeq = id.Seq
		}
	}
	return maxSeq
}

// Apply replays one journaled op against the mailbox. Replay of a recorded
// history must happen before EnableJournal, or the replayed ops would be
// journaled again.
func (b *Mailbox) Apply(op Op) {
	switch op.Kind {
	case OpDeposit:
		if b.Deposit(op.Msg, op.At) && op.Read {
			b.msgs[len(b.msgs)-1].Read = true
		}
	case OpDrain:
		b.Drain()
	case OpMarkRead:
		for _, id := range op.IDs {
			b.MarkRead(id)
		}
	case OpEvict:
		b.Remove(op.IDs...)
	case OpSuppress:
		for _, id := range op.IDs {
			b.Suppress(id)
		}
	}
}

// Retention is the archiving/clean-up policy of §3.1.2c: "some policy of
// message archiving and clean-up must be implemented to protect the servers'
// storage from being used up". Zero fields disable the corresponding limit.
type Retention struct {
	MaxMessages int      // keep at most this many messages (oldest evicted first)
	MaxAge      sim.Time // evict messages older than this
	ReadOnly    bool     // only evict messages already read
}

// Cleanup applies the policy at virtual time now and returns the evicted
// messages (oldest first).
func (b *Mailbox) Cleanup(p Retention, now sim.Time) []Stored {
	var evicted []Stored
	evict := func(i int) bool {
		s := b.msgs[i]
		if p.ReadOnly && !s.Read {
			return false
		}
		evicted = append(evicted, s)
		b.bytes -= s.Size()
		return true
	}
	if p.MaxAge > 0 {
		kept := b.msgs[:0]
		for i := range b.msgs {
			if now-b.msgs[i].ArrivedAt > p.MaxAge && evict(i) {
				continue
			}
			kept = append(kept, b.msgs[i])
		}
		b.msgs = kept
	}
	if p.MaxMessages > 0 && len(b.msgs) > p.MaxMessages {
		over := len(b.msgs) - p.MaxMessages
		kept := b.msgs[:0]
		for i := range b.msgs {
			if over > 0 && evict(i) {
				over--
				continue
			}
			kept = append(kept, b.msgs[i])
		}
		b.msgs = kept
	}
	if b.journaling && len(evicted) > 0 {
		ids := make([]MessageID, len(evicted))
		for i := range evicted {
			ids[i] = evicted[i].ID
		}
		b.journal = append(b.journal, Op{Kind: OpEvict, IDs: ids})
	}
	return evicted
}

// ContentType classifies a message part. §5 anticipates that "electronic
// mail systems should be able to transfer messages that consist of
// different forms of data such as voice, video, graphs, and facsimile";
// parts make the envelope carry them uniformly.
type ContentType string

// Content types from the paper's §5 list plus plain text.
const (
	ContentText      ContentType = "text"
	ContentVoice     ContentType = "voice"
	ContentVideo     ContentType = "video"
	ContentGraph     ContentType = "graph"
	ContentFacsimile ContentType = "facsimile"
)

// Part is one typed body part of a multimedia message.
type Part struct {
	Type ContentType
	Data []byte
}

// AddPart appends a typed part to the message, copying data.
func (m *Message) AddPart(t ContentType, data []byte) {
	m.Parts = append(m.Parts, Part{Type: t, Data: append([]byte(nil), data...)})
}

// PartsSize is the total byte size of all typed parts.
func (m Message) PartsSize() int {
	total := 0
	for _, p := range m.Parts {
		total += len(p.Data)
	}
	return total
}
