package mailstore

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/sim"
)

func termUser(i int) names.Name {
	return names.Name{Region: "R1", Host: fmt.Sprintf("h%d", i%4), User: fmt.Sprintf("u%d", i)}
}

func termMsg(seq uint64, subject, body string) mail.Message {
	return mail.Message{
		ID:      mail.MessageID{Node: graph.NodeID(1), Seq: seq},
		Subject: subject,
		Body:    body,
	}
}

func TestTermsTokenizer(t *testing.T) {
	got := Terms("Budget Q3: budget review!", "numbers 42 and x")
	want := []string{"budget", "q3", "review", "numbers", "42", "and"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Terms = %v, want %v", got, want)
	}
	// Single-char tokens drop, over-long tokens drop, cap holds.
	long := ""
	for i := 0; i < 40; i++ {
		long += "x"
	}
	if got := Terms("a b "+long, ""); len(got) != 0 {
		t.Fatalf("want no terms from short/long tokens, got %v", got)
	}
	big := ""
	for i := 0; i < 2*maxTermsPerMsg; i++ {
		big += fmt.Sprintf("tok%d ", i)
	}
	if got := Terms(big, ""); len(got) != maxTermsPerMsg {
		t.Fatalf("cap: got %d terms, want %d", len(got), maxTermsPerMsg)
	}
}

func TestTermIndexDepositSearchDrain(t *testing.T) {
	s := New(4)
	s.EnableTermIndex()
	u1, u2 := termUser(1), termUser(2)
	s.Deposit(u1, termMsg(1, "quarterly budget", "see attached"), sim.Unit)
	s.Deposit(u2, termMsg(2, "lunch", "budget for the offsite"), sim.Unit)
	s.Deposit(u2, termMsg(3, "reminder", "offsite budget again"), sim.Unit)

	got := s.SearchTerm("Budget")
	want := []names.Name{u1, u2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SearchTerm(budget) = %v, want %v", got, want)
	}
	if got := s.SearchTerm("lunch"); !reflect.DeepEqual(got, []names.Name{u2}) {
		t.Fatalf("SearchTerm(lunch) = %v", got)
	}
	if got := s.SearchTerm("nosuch"); got != nil {
		t.Fatalf("SearchTerm(nosuch) = %v, want nil", got)
	}

	// Duplicate deposits must not double-count references.
	s.Deposit(u1, termMsg(1, "quarterly budget", "see attached"), 2*sim.Unit)

	// Draining u2 removes both its references; u1 remains.
	if n := len(s.Drain(u2)); n != 2 {
		t.Fatalf("drained %d messages, want 2", n)
	}
	if got := s.SearchTerm("budget"); !reflect.DeepEqual(got, []names.Name{u1}) {
		t.Fatalf("after drain SearchTerm(budget) = %v, want [%v]", got, u1)
	}
	if n := len(s.Drain(u1)); n != 1 {
		t.Fatalf("drained %d messages, want 1", n)
	}
	if got := s.SearchTerm("budget"); got != nil {
		t.Fatalf("after full drain SearchTerm(budget) = %v, want nil", got)
	}
}

func TestEnableTermIndexRebuildsExisting(t *testing.T) {
	s := New(2)
	u := termUser(7)
	s.Deposit(u, termMsg(9, "archive migration", ""), sim.Unit)
	if s.TermIndexed() {
		t.Fatal("index should be off before EnableTermIndex")
	}
	if got := s.SearchTerm("archive"); got != nil {
		t.Fatalf("search with index off = %v, want nil", got)
	}
	s.EnableTermIndex()
	if !s.TermIndexed() {
		t.Fatal("index should be on")
	}
	if got := s.SearchTerm("archive"); !reflect.DeepEqual(got, []names.Name{u}) {
		t.Fatalf("rebuilt SearchTerm(archive) = %v, want [%v]", got, u)
	}
}
