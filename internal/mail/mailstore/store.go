// Package mailstore provides the sharded mailbox store shared by both
// transports (internal/server on the simulated network, internal/livenet on
// the concurrent runtime). The flat map[names.Name]*mail.Mailbox it replaces
// made StoredBytes an O(mailboxes) scan and serialized every access behind
// one structure; the Store stripes mailboxes across N shards, each guarded by
// its own RWMutex and carrying running message/byte counters, so
//
//   - TotalBytes/TotalMessages are O(shards) counter sums, independent of the
//     number of mailboxes (the Server.StoredBytes fix);
//   - concurrent access from the live runtime contends per shard, not per
//     store;
//   - Users() returns names in sorted order, keeping audits and Evacuate
//     deterministic even though shard-internal map order is not.
//
// The counters are maintained by diffing Mailbox.Len()/Bytes() around every
// mutation while the shard lock is held, so any Mailbox operation — Deposit,
// Drain, Cleanup — keeps them exact without the Mailbox type knowing about
// the store.
package mailstore

import (
	"hash/fnv"
	"sort"
	"sync"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/sim"
	"github.com/largemail/largemail/internal/sketch"
)

// DefaultShards is the shard count used when New is given n <= 0. 16 keeps
// per-shard maps small at simulation scale while bounding the TotalBytes sum.
const DefaultShards = 16

type shard struct {
	mu    sync.RWMutex
	boxes map[names.Name]*mail.Mailbox
	msgs  int64
	bytes int64
	// terms is the optional per-shard term index (see termindex.go): term →
	// users whose buffered mail contains it, with per-user reference counts.
	// nil until EnableTermIndex.
	terms map[string]map[names.Name]int
	// sk summarises the live term set as a counting Bloom filter (see
	// sketch.go); skGen counts sketch mutations so cached aggregates built
	// from a Snapshot can detect staleness. nil until EnableTermIndex.
	sk    *sketch.Counting
	skGen uint64
}

// Store is a lock-striped mailbox store. The zero value is not usable;
// create with New (memory-only) or Open/OpenOptions (durable: every
// mutation is journaled to a per-shard WAL, see durable.go).
type Store struct {
	shards []shard
	mask   uint64
	w      *wal // nil for memory-only stores
}

// New returns a store with n shards, rounded up to a power of two so shard
// selection is a mask. n <= 0 selects DefaultShards.
func New(n int) *Store {
	if n <= 0 {
		n = DefaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	s := &Store{shards: make([]shard, size), mask: uint64(size - 1)}
	for i := range s.shards {
		s.shards[i].boxes = make(map[names.Name]*mail.Mailbox)
	}
	return s
}

// Shards reports the shard count.
func (s *Store) Shards() int { return len(s.shards) }

// shard selects a user's shard with FNV-1a, which is deterministic across
// processes and runs — shard placement must not depend on process-random
// seeds or the simulation's seeded equivalence runs could diverge in
// allocation behavior.
func (s *Store) shard(user names.Name) *shard { return &s.shards[s.shardIndex(user)] }

func (s *Store) shardIndex(user names.Name) int {
	h := fnv.New64a()
	h.Write([]byte(user.Region))
	h.Write([]byte{0})
	h.Write([]byte(user.Host))
	h.Write([]byte{0})
	h.Write([]byte(user.User))
	return int(h.Sum64() & s.mask)
}

// Update runs fn on the user's mailbox under the shard's write lock,
// creating the mailbox if absent, and reconciles the shard counters with
// whatever fn did. All mutations must go through Update (or a helper built
// on it) or the counters drift.
func (s *Store) Update(user names.Name, fn func(*mail.Mailbox)) {
	i := s.shardIndex(user)
	sh := &s.shards[i]
	sh.mu.Lock()
	mb, ok := sh.boxes[user]
	if !ok {
		mb = mail.NewMailbox(user)
		if s.w != nil {
			mb.EnableJournal()
		}
		sh.boxes[user] = mb
	}
	l0, b0 := mb.Len(), mb.Bytes()
	fn(mb)
	sh.msgs += int64(mb.Len() - l0)
	sh.bytes += int64(mb.Bytes() - b0)
	if s.w != nil {
		s.logOps(i, user, mb)
	}
	sh.mu.Unlock()
}

// UpdateExisting is Update without mailbox creation; it reports whether the
// user had a mailbox (fn is not called otherwise). A drained-empty mailbox
// still exists: its duplicate-suppression memory must survive.
func (s *Store) UpdateExisting(user names.Name, fn func(*mail.Mailbox)) bool {
	i := s.shardIndex(user)
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	mb, ok := sh.boxes[user]
	if !ok {
		return false
	}
	l0, b0 := mb.Len(), mb.Bytes()
	fn(mb)
	sh.msgs += int64(mb.Len() - l0)
	sh.bytes += int64(mb.Bytes() - b0)
	if s.w != nil {
		s.logOps(i, user, mb)
	}
	return true
}

// View runs fn on the user's mailbox under the shard's read lock. fn must
// not mutate the mailbox. It reports whether the user had a mailbox.
func (s *Store) View(user names.Name, fn func(*mail.Mailbox)) bool {
	sh := s.shard(user)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	mb, ok := sh.boxes[user]
	if !ok {
		return false
	}
	fn(mb)
	return true
}

// Deposit stores a message for a user, reporting whether it was newly stored
// (false for duplicates). With the term index enabled, a fresh deposit's
// terms are indexed under the same shard lock.
func (s *Store) Deposit(user names.Name, m mail.Message, at sim.Time) bool {
	return s.depositIndexed(user, m, at)
}

// Drain removes and returns the user's stored messages in arrival order,
// releasing their term-index references.
func (s *Store) Drain(user names.Name) []mail.Stored {
	return s.drainIndexed(user)
}

// Peek returns the user's stored messages without removing them.
func (s *Store) Peek(user names.Name) []mail.Stored {
	var out []mail.Stored
	s.View(user, func(mb *mail.Mailbox) { out = mb.Peek() })
	return out
}

// Len reports how many messages are buffered for a user.
func (s *Store) Len(user names.Name) int {
	n := 0
	s.View(user, func(mb *mail.Mailbox) { n = mb.Len() })
	return n
}

// TotalMessages reports the number of buffered messages across all
// mailboxes — an O(shards) counter sum, not a scan.
func (s *Store) TotalMessages() int64 {
	var total int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		total += sh.msgs
		sh.mu.RUnlock()
	}
	return total
}

// TotalBytes reports the accounted content bytes buffered across all
// mailboxes — an O(shards) counter sum, not a scan.
func (s *Store) TotalBytes() int64 {
	var total int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		total += sh.bytes
		sh.mu.RUnlock()
	}
	return total
}

// MaxSeenSeq returns the highest message sequence number attributed to node
// across every mailbox's duplicate-suppression memory. A recovered store
// remembers every ID it ever accepted; an ID allocator resuming after a
// process restart must start above this floor or its next message would be
// suppressed as a duplicate of a delivered one.
func (s *Store) MaxSeenSeq(node graph.NodeID) uint64 {
	var maxSeq uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, mb := range sh.boxes {
			if v := mb.MaxSeenSeq(node); v > maxSeq {
				maxSeq = v
			}
		}
		sh.mu.RUnlock()
	}
	return maxSeq
}

// NumUsers reports how many mailboxes exist (including drained-empty ones,
// which persist for duplicate suppression).
func (s *Store) NumUsers() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.boxes)
		sh.mu.RUnlock()
	}
	return n
}

// Users returns every mailbox owner, sorted by name — the deterministic
// iteration order audits and Evacuate rely on.
func (s *Store) Users() []names.Name {
	var out []names.Name
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for u := range sh.boxes {
			out = append(out, u)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
