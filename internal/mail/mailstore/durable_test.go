package mailstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/sim"
)

func duser(n int) names.Name {
	return names.Name{Region: "R0", Host: fmt.Sprintf("h%d", n%4), User: fmt.Sprintf("u%d", n)}
}

func dmsg(seq uint64, to names.Name, body string) mail.Message {
	return mail.Message{
		ID:          mail.MessageID{Node: graph.NodeID(1), Seq: seq},
		From:        duser(0),
		To:          []names.Name{to},
		Subject:     fmt.Sprintf("s%d", seq),
		Body:        body,
		SubmittedAt: sim.Time(seq * 10),
	}
}

// ids extracts the message IDs of a Peek/Drain result.
func ids(stored []mail.Stored) []mail.MessageID {
	out := make([]mail.MessageID, len(stored))
	for i, st := range stored {
		out[i] = st.ID
	}
	return out
}

// requireState compares a store against an exact per-user oracle of
// surviving message IDs (in arrival order) and re-derives the counter sums
// from Peek so recovered counters are proven, not assumed.
func requireState(t *testing.T, st *Store, want map[string][]mail.MessageID) {
	t.Helper()
	var msgs, bytes int64
	for _, u := range st.Users() {
		stored := st.Peek(u)
		got := ids(stored)
		key := u.String()
		if fmt.Sprint(got) != fmt.Sprint(want[key]) {
			t.Fatalf("user %s: surviving messages = %v, want %v", key, got, want[key])
		}
		delete(want, key)
		msgs += int64(len(stored))
		for _, s := range stored {
			bytes += int64(s.Size())
		}
	}
	for key, w := range want {
		if len(w) > 0 {
			t.Fatalf("user %s missing entirely (want %v)", key, w)
		}
	}
	if got := st.TotalMessages(); got != msgs {
		t.Fatalf("TotalMessages = %d, want %d (recomputed)", got, msgs)
	}
	if got := st.TotalBytes(); got != bytes {
		t.Fatalf("TotalBytes = %d, want %d (recomputed)", got, bytes)
	}
}

// TestDurableRoundtrip: a closed store reopens with identical state —
// stored messages with order/read flags/parts, drained-empty mailboxes, and
// the duplicate-suppression memory.
func TestDurableRoundtrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	u1, u2, u3 := duser(1), duser(2), duser(3)
	m1 := dmsg(1, u1, "hello")
	m1.AddPart(mail.ContentVoice, []byte{0xde, 0xad})
	if !st.Deposit(u1, m1, 5) {
		t.Fatal("fresh deposit rejected")
	}
	st.Deposit(u1, dmsg(2, u1, "again"), 6)
	st.Deposit(u2, dmsg(3, u2, "other"), 7)
	st.Deposit(u3, dmsg(4, u3, "bye"), 8)
	st.UpdateExisting(u1, func(mb *mail.Mailbox) { mb.MarkRead(m1.ID) })
	if got := len(st.Drain(u3)); got != 1 {
		t.Fatalf("drained %d, want 1", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rs, ok := re.RecoveryStats()
	if !ok || rs.Records == 0 || rs.Mailboxes != 3 {
		t.Fatalf("recovery stats = %+v, ok=%v", rs, ok)
	}
	if re.LastStartTime().IsZero() {
		t.Fatal("recovered store has zero LastStartTime")
	}
	requireState(t, re, map[string][]mail.MessageID{
		u1.String(): {m1.ID, {Node: 1, Seq: 2}},
		u2.String(): {{Node: 1, Seq: 3}},
		u3.String(): nil, // drained but must still exist for suppression
	})
	if re.NumUsers() != 3 {
		t.Fatalf("NumUsers = %d, want 3 (drained mailbox must survive)", re.NumUsers())
	}
	got := re.Peek(u1)
	if !got[0].Read || got[0].ArrivedAt != 5 {
		t.Fatalf("read flag / arrival lost: %+v", got[0])
	}
	if len(got[0].Parts) != 1 || got[0].Parts[0].Type != mail.ContentVoice {
		t.Fatalf("parts lost: %+v", got[0].Parts)
	}
	// The drained message's ID must stay suppressed after recovery.
	if re.Deposit(u3, dmsg(4, u3, "bye"), 99) {
		t.Fatal("re-deposit of drained message not suppressed after recovery")
	}
}

// TestDurableCrashRestartMatrix kills the store (reopen without Close —
// appends are direct writes, so this is what an in-process kill leaves
// behind) at three checkpoints relative to the snapshot/compaction cycle and
// checks an exact surviving-message oracle, mirroring getmail_matrix_test.go.
func TestDurableCrashRestartMatrix(t *testing.T) {
	u1, u2 := duser(1), duser(2)
	big := strings.Repeat("x", 256)
	cases := []struct {
		name string
		opts Options
		run  func(t *testing.T, st *Store)
		want map[string][]mail.MessageID
		// wantCompactions asserts where the kill landed in the cycle.
		wantCompactions func(t *testing.T, n int64)
	}{
		{
			name: "pre-snapshot", // killed before any compaction: pure WAL replay
			opts: Options{Shards: 1, CompactBytes: 1 << 30},
			run: func(t *testing.T, st *Store) {
				st.Deposit(u1, dmsg(1, u1, "a"), 1)
				st.Deposit(u1, dmsg(2, u1, "b"), 2)
				st.Deposit(u2, dmsg(3, u2, "c"), 3)
				st.Drain(u1)
				st.Deposit(u1, dmsg(4, u1, "d"), 4)
			},
			want: map[string][]mail.MessageID{
				u1.String(): {{Node: 1, Seq: 4}},
				u2.String(): {{Node: 1, Seq: 3}},
			},
			wantCompactions: func(t *testing.T, n int64) {
				if n != 0 {
					t.Fatalf("compactions = %d, want 0", n)
				}
			},
		},
		{
			name: "mid-wal", // killed with live WAL records appended after a snapshot
			opts: Options{Shards: 1, CompactBytes: 512},
			run: func(t *testing.T, st *Store) {
				for seq := uint64(1); seq <= 8; seq++ {
					st.Deposit(u1, dmsg(seq, u1, big), sim.Time(seq))
				}
				st.Drain(u1) // shrink live state so the next appends out-size it
				for seq := uint64(9); seq <= 12; seq++ {
					st.Deposit(u2, dmsg(seq, u2, "tail"), sim.Time(seq))
				}
			},
			want: map[string][]mail.MessageID{
				u1.String(): nil,
				u2.String(): {{Node: 1, Seq: 9}, {Node: 1, Seq: 10}, {Node: 1, Seq: 11}, {Node: 1, Seq: 12}},
			},
			wantCompactions: func(t *testing.T, n int64) {
				if n == 0 {
					t.Fatal("compactions = 0, want > 0 (checkpoint requires a snapshot behind the tail)")
				}
			},
		},
		{
			name: "post-compaction", // killed right after a snapshot: replay is the snapshot alone
			opts: Options{Shards: 1, CompactBytes: 256},
			run: func(t *testing.T, st *Store) {
				st.Deposit(u1, dmsg(1, u1, big), 1)
				st.Deposit(u2, dmsg(2, u2, big), 2)
				st.Drain(u2)
				st.UpdateExisting(u1, func(mb *mail.Mailbox) { mb.MarkRead(mail.MessageID{Node: 1, Seq: 1}) })
				st.Deposit(u1, dmsg(3, u1, big+big), 3) // big append lands the compaction here
			},
			want: map[string][]mail.MessageID{
				u1.String(): {{Node: 1, Seq: 1}, {Node: 1, Seq: 3}},
				u2.String(): nil,
			},
			wantCompactions: func(t *testing.T, n int64) {
				if n == 0 {
					t.Fatal("compactions = 0, want > 0")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.opts.Dir = t.TempDir()
			st, err := OpenOptions(tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			tc.run(t, st)
			if err := st.Err(); err != nil {
				t.Fatalf("WAL error before kill: %v", err)
			}
			ws, _ := st.WALStats()
			tc.wantCompactions(t, ws.Compactions)
			// Kill: no Close, no sync. Reopen from whatever hit the files.
			re, err := OpenOptions(tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			requireState(t, re, tc.want)
		})
	}
}

// TestDurableSuppressionSurvivesKill pins the dedup half of the kill oracle
// separately: every ID deposited before the kill is suppressed after it.
func TestDurableSuppressionSurvivesKill(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Shards: 1, CompactBytes: 512}
	st, err := OpenOptions(opts)
	if err != nil {
		t.Fatal(err)
	}
	u1 := duser(1)
	for seq := uint64(1); seq <= 20; seq++ {
		st.Deposit(u1, dmsg(seq, u1, strings.Repeat("y", 64)), sim.Time(seq))
	}
	st.Drain(u1)
	re, err := OpenOptions(opts) // kill + restart
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for seq := uint64(1); seq <= 20; seq++ {
		if re.Deposit(u1, dmsg(seq, u1, "dup"), 999) {
			t.Fatalf("seq %d re-deposited after kill: suppression memory lost", seq)
		}
	}
}

func onlyShardDir(t *testing.T, dir string) string {
	t.Helper()
	return filepath.Join(dir, "shard-0000")
}

func segFiles(t *testing.T, shardDir string) []string {
	t.Helper()
	ents, err := os.ReadDir(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".wal") {
			out = append(out, filepath.Join(shardDir, e.Name()))
		}
	}
	return out
}

// TestDurableTornTail: garbage or a half-written frame at the end of the
// newest segment is truncated away on Open; everything before it survives.
func TestDurableTornTail(t *testing.T) {
	for _, tear := range []struct {
		name string
		tear func(t *testing.T, path string)
	}{
		{"garbage-appended", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte{0x13, 0x37, 0xff}); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}},
		{"frame-cut-short", func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-3); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tear.name, func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{Dir: dir, Shards: 1, CompactBytes: 1 << 30}
			st, err := OpenOptions(opts)
			if err != nil {
				t.Fatal(err)
			}
			u1 := duser(1)
			st.Deposit(u1, dmsg(1, u1, "keep-a"), 1)
			st.Deposit(u1, dmsg(2, u1, "keep-b"), 2)
			st.Deposit(u1, dmsg(3, u1, "last"), 3)
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			segs := segFiles(t, onlyShardDir(t, dir))
			if len(segs) != 1 {
				t.Fatalf("segments = %d, want 1", len(segs))
			}
			tear.tear(t, segs[0])

			re, err := OpenOptions(opts)
			if err != nil {
				t.Fatalf("Open after tail tear: %v", err)
			}
			defer re.Close()
			rs, _ := re.RecoveryStats()
			if rs.TornTails != 1 {
				t.Fatalf("TornTails = %d, want 1", rs.TornTails)
			}
			got := ids(re.Peek(u1))
			// frame-cut-short loses the final record; garbage-appended loses nothing.
			wantLen := 3
			if tear.name == "frame-cut-short" {
				wantLen = 2
			}
			if len(got) != wantLen {
				t.Fatalf("surviving messages = %v, want %d of them", got, wantLen)
			}
			// The tear was truncated on disk: a second reopen is clean.
			re.Close()
			re2, err := OpenOptions(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer re2.Close()
			rs2, _ := re2.RecoveryStats()
			if rs2.TornTails != 0 {
				t.Fatalf("second open TornTails = %d, want 0 (tear not truncated)", rs2.TornTails)
			}
		})
	}
}

// TestDurableCorruptSealedSegment: a checksum failure in a sealed (non-tail)
// segment is real corruption and must fail Open, not silently truncate.
func TestDurableCorruptSealedSegment(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation; huge CompactBytes keeps the history.
	opts := Options{Dir: dir, Shards: 1, SegmentBytes: 128, CompactBytes: 1 << 30}
	st, err := OpenOptions(opts)
	if err != nil {
		t.Fatal(err)
	}
	u1 := duser(1)
	for seq := uint64(1); seq <= 6; seq++ {
		st.Deposit(u1, dmsg(seq, u1, strings.Repeat("z", 64)), sim.Time(seq))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segFiles(t, onlyShardDir(t, dir))
	if len(segs) < 2 {
		t.Fatalf("segments = %d, want >= 2 (rotation did not happen)", len(segs))
	}
	// Flip a payload byte in the first (sealed) segment.
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenOptions(opts); err == nil {
		t.Fatal("Open succeeded over a corrupt sealed segment")
	}
}

// TestDurableShardMismatch: reopening with a conflicting shard count is an
// error (shard placement decides which log a user's ops live in).
func TestDurableShardMismatch(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := Open(dir, 8); err == nil {
		t.Fatal("Open with mismatched shard count succeeded")
	}
	// Zero means "use the manifest's count".
	re, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4 from manifest", re.Shards())
	}
}

// TestDurableConcurrent hammers Deposit/Drain/TotalBytes from many
// goroutines on a durable store (run under -race by tier2-durability), then
// reopens and requires the recovered totals to match the survivors exactly.
func TestDurableConcurrent(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Shards: 8, CompactBytes: 4 << 10}
	st, err := OpenOptions(opts)
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			u := duser(wkr)
			for i := 0; i < perWorker; i++ {
				m := mail.Message{
					ID:   mail.MessageID{Node: graph.NodeID(wkr + 1), Seq: uint64(i + 1)},
					From: duser(0), To: []names.Name{u},
					Body: strings.Repeat("b", 32),
				}
				st.Deposit(u, m, sim.Time(i))
				if i%7 == 6 {
					st.Drain(u)
				}
				_ = st.TotalBytes()
				_ = st.TotalMessages()
			}
		}(wkr)
	}
	wg.Wait()
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	wantMsgs, wantBytes := st.TotalMessages(), st.TotalBytes()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenOptions(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.TotalMessages(); got != wantMsgs {
		t.Fatalf("recovered TotalMessages = %d, want %d", got, wantMsgs)
	}
	if got := re.TotalBytes(); got != wantBytes {
		t.Fatalf("recovered TotalBytes = %d, want %d", got, wantBytes)
	}
	if re.NumUsers() != workers {
		t.Fatalf("NumUsers = %d, want %d", re.NumUsers(), workers)
	}
}

// TestDurableInterruptedCompactionDoesNotResurrect pins the crash window
// inside compaction's history deletion: a kill after the snapshot rename but
// before the old segments are unlinked leaves a low-seq prefix whose
// Deposits have lost their Drain records. Replay must start at the newest
// snapshot and ignore (and finish deleting) that prefix — replaying it would
// resurrect already-delivered mail.
func TestDurableInterruptedCompactionDoesNotResurrect(t *testing.T) {
	dir := t.TempDir()
	u1 := duser(1)

	// Phase 1: two deposits, no compaction — seg 1 holds them.
	st, err := OpenOptions(Options{Dir: dir, Shards: 1, CompactBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	st.Deposit(u1, dmsg(1, u1, "delivered-a"), 1)
	st.Deposit(u1, dmsg(2, u1, "delivered-b"), 2)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	shardDir := onlyShardDir(t, dir)
	segs := segFiles(t, shardDir)
	if len(segs) != 1 {
		t.Fatalf("segments after phase 1 = %v, want 1", segs)
	}
	oldPath := segs[0]
	oldSeg, err := os.ReadFile(oldPath)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2: drain (deliver) both, then force a compaction.
	st2, err := OpenOptions(Options{Dir: dir, Shards: 1, CompactBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(st2.Drain(u1)); got != 2 {
		t.Fatalf("drained %d, want 2", got)
	}
	st2.Deposit(u1, dmsg(3, u1, strings.Repeat("z", 256)), 3)
	ws, _ := st2.WALStats()
	if ws.Compactions == 0 {
		t.Fatal("compactions = 0, want > 0 (scenario requires a snapshot)")
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the kill mid-deletion: the old segment is back, alongside the
	// snapshot that superseded it.
	if err := os.WriteFile(oldPath, oldSeg, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenOptions(Options{Dir: dir, Shards: 1, CompactBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	requireState(t, re, map[string][]mail.MessageID{
		u1.String(): {{Node: 1, Seq: 3}},
	})
	// The delivered IDs stay suppressed, not resurrected.
	for seq := uint64(1); seq <= 2; seq++ {
		if re.Deposit(u1, dmsg(seq, u1, "dup"), 99) {
			t.Fatalf("drained seq %d re-deposited: resurrection via stale segment", seq)
		}
	}
	// Recovery finished the interrupted deletion.
	if _, err := os.Stat(oldPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale pre-snapshot segment still present after recovery (stat err = %v)", err)
	}
}

// TestDurableOversizeRecordLatched: a record whose payload exceeds the frame
// cap must never reach the log — ReadRecord would reject it as corruption,
// poisoning every record behind it. The append latches an error, memory
// keeps serving, and the store reopens cleanly without the oversize message.
func TestDurableOversizeRecordLatched(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Shards: 1}
	st, err := OpenOptions(opts)
	if err != nil {
		t.Fatal(err)
	}
	u1 := duser(1)
	st.Deposit(u1, dmsg(1, u1, "small"), 1)
	if !st.Deposit(u1, dmsg(2, u1, strings.Repeat("x", maxPayload+1)), 2) {
		t.Fatal("oversize deposit rejected from memory")
	}
	if err := st.Err(); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("Err = %v, want ErrRecordTooLarge", err)
	}
	if st.Len(u1) != 2 {
		t.Fatalf("Len = %d, want 2 (store keeps serving from memory)", st.Len(u1))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenOptions(opts)
	if err != nil {
		t.Fatalf("reopen after oversize append: %v", err)
	}
	defer re.Close()
	if got := ids(re.Peek(u1)); len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("recovered %v, want only seq 1 (oversize record must not hit disk)", got)
	}
}

// TestDurableCloseLatchesAppends: mutations after Close still apply in
// memory but are not logged, and Close is idempotent.
func TestDurableCloseLatchesAppends(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	u1 := duser(1)
	st.Deposit(u1, dmsg(1, u1, "logged"), 1)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st.Deposit(u1, dmsg(2, u1, "after-close"), 2)
	if st.Len(u1) != 2 {
		t.Fatal("post-Close deposit lost from memory")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	re, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := ids(re.Peek(u1)); len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("recovered %v, want only seq 1", got)
	}
	if errors.Is(re.Err(), os.ErrClosed) {
		t.Fatal("fresh store carries stale error")
	}
}
