// Durability layer: a per-shard append-only segment log under the existing
// Store API. Every mutation that goes through Update/UpdateExisting is
// decomposed into mail.Op primitives by the mailbox journal and appended to
// the owning shard's log while the shard write lock is held, so the log
// order is exactly the lock order. Recovery (Open) replays the segments in
// sequence into a warm Store.
//
// Layout under Options.Dir:
//
//	MANIFEST.json             {"version":1,"shards":N} — shard count is fixed
//	shard-0000/seg-%016d.wal  magic header + framed records (see wal.go)
//	shard-0000/snap-%016d.wal snapshot segment (same format, same seq space)
//	shard-0001/...
//
// Two maintenance actions bound recovery cost:
//
//   - rotation: a segment that reaches SegmentBytes is synced, sealed, and a
//     new one started. Sealed segments are therefore fully on disk; a record
//     that fails CRC in one is real corruption and fails Open, while a bad
//     tail in the *newest* segment is the expected shape of a crash
//     mid-append and is truncated away.
//   - compaction: when the bytes appended since the last snapshot exceed
//     max(CompactBytes, live content bytes) the shard's entire live state is
//     written as one snapshot segment (ordinary Deposit/Suppress records)
//     and older segments are deleted, so replay work is bounded by live
//     state, not history. Snapshots carry the distinct "snap-" prefix so
//     recovery can always start at the newest one and ignore anything
//     older: a crash mid-deletion leaves stale history behind, and
//     replaying it would resurrect messages whose Drain records were
//     already unlinked.
//
// Fsync policy: appends are direct write syscalls — no userspace buffering —
// so a process kill loses nothing that was acknowledged. FsyncNever (the
// default) leaves OS-crash durability to the kernel's writeback; FsyncAlways
// syncs after every append batch. Rotation and compaction always sync.
package mailstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/names"
)

// FsyncMode selects when the WAL fsyncs.
type FsyncMode int

const (
	// FsyncNever (default): write syscalls only. Survives process kill;
	// an OS crash can lose the kernel's unflushed writeback window.
	FsyncNever FsyncMode = iota
	// FsyncAlways: fsync after every append batch. Survives OS crash at the
	// cost of a disk flush per mutation.
	FsyncAlways
)

func (m FsyncMode) String() string {
	if m == FsyncAlways {
		return "always"
	}
	return "never"
}

// ParseFsyncMode maps the String() form back to a mode — the -fsync flag
// parser shared by maild and mailbench.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "never", "":
		return FsyncNever, nil
	case "always":
		return FsyncAlways, nil
	}
	return FsyncNever, fmt.Errorf("mailstore: unknown fsync mode %q (want never|always)", s)
}

// Options configures a durable store.
type Options struct {
	Dir          string    // root directory (created if absent); required
	Shards       int       // shard count, as New; must match an existing dir's manifest
	Fsync        FsyncMode // see FsyncMode
	SegmentBytes int64     // rotate segments at this size (default 4 MiB)
	CompactBytes int64     // snapshot when appended-since-snapshot exceeds max(this, live bytes) (default 1 MiB)
}

const (
	defaultSegmentBytes = 4 << 20
	defaultCompactBytes = 1 << 20
	manifestName        = "MANIFEST.json"
)

var segMagic = []byte("MAILWAL1")

// WALStats are cumulative write-path counters for a durable store.
type WALStats struct {
	Appends     int64 // append batches (one per mutating Update)
	Bytes       int64 // framed bytes appended, snapshots excluded
	AppendNs    int64 // wall time spent in append write+sync calls
	Syncs       int64 // fsync calls
	Rotations   int64 // segments sealed at SegmentBytes
	Compactions int64 // snapshot+compact cycles
}

// Add accumulates o's counters into st — how owners carry totals across a
// store close/reopen cycle (e.g. livenet kill-restart) so cumulative
// write-path work is not zeroed by each fresh Open.
func (st *WALStats) Add(o WALStats) {
	st.Appends += o.Appends
	st.Bytes += o.Bytes
	st.AppendNs += o.AppendNs
	st.Syncs += o.Syncs
	st.Rotations += o.Rotations
	st.Compactions += o.Compactions
}

// RecoveryStats describe what Open replayed.
type RecoveryStats struct {
	Segments  int           // segment files replayed
	Records   int           // records applied
	Bytes     int64         // framed bytes read
	TornTails int           // segments truncated at a torn/corrupt tail
	Mailboxes int           // mailboxes reconstructed
	Messages  int64         // stored messages reconstructed
	Elapsed   time.Duration // wall time of the replay
}

type manifest struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

// wal is the durable half of a Store; nil on memory-only stores.
type wal struct {
	dir          string
	fsync        FsyncMode
	segmentBytes int64
	compactBytes int64
	logs         []*shardLog
	lastStart    time.Time
	recovery     RecoveryStats

	errp   atomic.Pointer[error] // first append failure; store keeps serving from memory
	closed atomic.Bool

	appends     atomic.Int64
	bytes       atomic.Int64
	appendNs    atomic.Int64
	syncs       atomic.Int64
	rotations   atomic.Int64
	compactions atomic.Int64
}

// shardLog is one shard's segment chain. All fields are guarded by the
// owning shard's write lock — appends, rotation, and compaction only happen
// inside Update/UpdateExisting, which hold it.
type shardLog struct {
	dir          string
	f            *os.File
	seq          uint64 // sequence number of the open segment
	size         int64  // bytes in the open segment
	sinceCompact int64  // bytes appended since the last snapshot
	scratch      []byte // reusable encode buffer
}

// Open recovers (or creates) a durable store rooted at dir with the given
// shard count, replaying snapshot and WAL segments into a warm Store.
func Open(dir string, shards int) (*Store, error) {
	return OpenOptions(Options{Dir: dir, Shards: shards})
}

// OpenOptions is Open with full control over fsync and segment policy.
func OpenOptions(o Options) (*Store, error) {
	if o.Dir == "" {
		return nil, errors.New("mailstore: OpenOptions requires Dir")
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.CompactBytes <= 0 {
		o.CompactBytes = defaultCompactBytes
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("mailstore: %w", err)
	}
	shards := o.Shards
	mPath := filepath.Join(o.Dir, manifestName)
	if raw, err := os.ReadFile(mPath); err == nil {
		var m manifest
		if err := json.Unmarshal(raw, &m); err != nil || m.Version != 1 || m.Shards <= 0 {
			return nil, fmt.Errorf("mailstore: bad manifest %s", mPath)
		}
		if shards > 0 && roundShards(shards) != m.Shards {
			return nil, fmt.Errorf("mailstore: shard count %d conflicts with existing store (%d shards)",
				shards, m.Shards)
		}
		shards = m.Shards
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("mailstore: %w", err)
	}

	s := New(shards)
	w := &wal{
		dir:          o.Dir,
		fsync:        o.Fsync,
		segmentBytes: o.SegmentBytes,
		compactBytes: o.CompactBytes,
		logs:         make([]*shardLog, len(s.shards)),
	}
	s.w = w

	raw, err := json.Marshal(manifest{Version: 1, Shards: len(s.shards)})
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(mPath, raw, 0o644); err != nil {
		return nil, fmt.Errorf("mailstore: %w", err)
	}

	start := time.Now()
	for i := range s.shards {
		lg := &shardLog{dir: filepath.Join(o.Dir, fmt.Sprintf("shard-%04d", i))}
		w.logs[i] = lg
		if err := os.MkdirAll(lg.dir, 0o755); err != nil {
			return nil, fmt.Errorf("mailstore: %w", err)
		}
		if err := s.recoverShard(i, lg); err != nil {
			s.Close()
			return nil, err
		}
	}
	// Rebuild counters and arm journaling only after every shard replayed.
	for i := range s.shards {
		sh := &s.shards[i]
		sh.msgs, sh.bytes = 0, 0
		for _, mb := range sh.boxes {
			sh.msgs += int64(mb.Len())
			sh.bytes += int64(mb.Bytes())
			w.recovery.Messages += int64(mb.Len())
			mb.EnableJournal()
		}
		w.recovery.Mailboxes += len(sh.boxes)
	}
	w.recovery.Elapsed = time.Since(start)
	w.lastStart = time.Now()
	return s, nil
}

// recoverShard replays shard i's segments in sequence order, starting at the
// newest snapshot (older files are stale history from an interrupted
// compaction and are deleted), and leaves the newest file open for appending
// (creating seg 1 if none exist). A torn or corrupt record in the newest
// segment truncates it there; in a sealed segment it fails recovery.
func (s *Store) recoverShard(i int, lg *shardLog) error {
	w := s.w
	entries, err := os.ReadDir(lg.dir)
	if err != nil {
		return fmt.Errorf("mailstore: %w", err)
	}
	type seg struct {
		seq  uint64
		snap bool
		path string
	}
	var segs []seg
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// Snapshot interrupted before its rename: never replayed, and
			// the compaction that produced it never deleted anything.
			os.Remove(filepath.Join(lg.dir, name))
			continue
		}
		seq, snap, ok := parseSegName(name)
		if !ok {
			continue
		}
		segs = append(segs, seg{seq: seq, snap: snap, path: filepath.Join(lg.dir, name)})
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].seq < segs[b].seq })
	// Replay begins at the newest snapshot: everything below it is history a
	// compaction already superseded. If the deleting process died mid-loop
	// the prefix still exists, and replaying it would re-apply Deposits whose
	// Drain/Evict records were already unlinked — resurrecting delivered
	// mail. Finish the interrupted deletion instead.
	first := 0
	for k, sg := range segs {
		if sg.snap {
			first = k
		}
	}
	for _, sg := range segs[:first] {
		if err := os.Remove(sg.path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("mailstore: drop stale segment: %w", err)
		}
	}
	segs = segs[first:]

	sh := &s.shards[i]
	var total int64
	for k, sg := range segs {
		last := k == len(segs)-1
		buf, err := os.ReadFile(sg.path)
		if err != nil {
			return fmt.Errorf("mailstore: %w", err)
		}
		if len(buf) < len(segMagic) || string(buf[:len(segMagic)]) != string(segMagic) {
			if last {
				// A crash can tear even the 8-byte header of a freshly
				// rotated segment; rewrite it below.
				if err := os.Truncate(sg.path, 0); err != nil {
					return fmt.Errorf("mailstore: %w", err)
				}
				w.recovery.TornTails++
				buf = nil
			} else {
				return fmt.Errorf("mailstore: %s: bad segment header", sg.path)
			}
		}
		off := 0
		if buf != nil {
			off = len(segMagic)
		}
		for off < len(buf) {
			rec, n, err := ReadRecord(buf[off:])
			if err != nil {
				if !last {
					return fmt.Errorf("mailstore: %s at offset %d: %w", sg.path, off, err)
				}
				if terr := os.Truncate(sg.path, int64(off)); terr != nil {
					return fmt.Errorf("mailstore: %w", terr)
				}
				w.recovery.TornTails++
				buf = buf[:off]
				break
			}
			mb, ok := sh.boxes[rec.User]
			if !ok {
				mb = mail.NewMailbox(rec.User)
				sh.boxes[rec.User] = mb
			}
			mb.Apply(rec.Op)
			w.recovery.Records++
			off += n
		}
		w.recovery.Segments++
		w.recovery.Bytes += int64(len(buf))
		total += int64(len(buf))
		if last {
			lg.seq = sg.seq
			lg.size = int64(len(buf))
		}
	}

	if len(segs) == 0 {
		lg.seq = 1
		f, err := createSegment(lg.dir, segPath(lg.dir, lg.seq))
		if err != nil {
			return err
		}
		lg.f, lg.size = f, int64(len(segMagic))
		return nil
	}
	f, err := os.OpenFile(segs[len(segs)-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("mailstore: %w", err)
	}
	if lg.size < int64(len(segMagic)) {
		// Truncated-to-zero tail segment from the header-tear case above.
		if _, err := f.Write(segMagic); err != nil {
			f.Close()
			return fmt.Errorf("mailstore: %w", err)
		}
		lg.size = int64(len(segMagic))
	}
	lg.f = f
	// Everything replayed is history of unknown snapshot share; charging it
	// all to sinceCompact at worst triggers one early compaction, after
	// which the accounting is exact again.
	lg.sinceCompact = total
	return nil
}

func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%016d.wal", seq))
}

func snapPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016d.wal", seq))
}

// parseSegName decodes a segment file name into its sequence number and
// whether it is a snapshot. Segments and snapshots share one seq space, so
// sorting by seq alone reconstructs the append order.
func parseSegName(name string) (seq uint64, snap bool, ok bool) {
	if !strings.HasSuffix(name, ".wal") {
		return 0, false, false
	}
	num := name[:len(name)-len(".wal")]
	switch {
	case strings.HasPrefix(num, "seg-"):
		num = num[len("seg-"):]
	case strings.HasPrefix(num, "snap-"):
		snap = true
		num = num[len("snap-"):]
	default:
		return 0, false, false
	}
	seq, err := strconv.ParseUint(num, 10, 64)
	if err != nil || seq == 0 {
		return 0, false, false
	}
	return seq, snap, true
}

// syncDir fsyncs a directory so renames/creates/unlinks inside it survive an
// OS crash — without it the file's own fsync says nothing about whether its
// directory entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("mailstore: sync dir: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("mailstore: sync dir: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("mailstore: sync dir: %w", cerr)
	}
	return nil
}

func createSegment(dir, path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("mailstore: %w", err)
	}
	if _, err := f.Write(segMagic); err != nil {
		f.Close()
		return nil, fmt.Errorf("mailstore: %w", err)
	}
	// The new segment's directory entry must be durable before anything is
	// appended to it, or an OS crash could lose the whole file while older
	// state (e.g. the unlinks of a later compaction) survives.
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// logOps drains the mailbox journal and appends it to shard i's log. Called
// with the shard write lock held; errors are latched (Err) and the store
// keeps serving from memory.
func (s *Store) logOps(i int, user names.Name, mb *mail.Mailbox) {
	ops := mb.TakeOps()
	if len(ops) == 0 || s.w.errp.Load() != nil || s.w.closed.Load() {
		return
	}
	w, lg := s.w, s.w.logs[i]
	buf := lg.scratch[:0]
	for _, op := range ops {
		start := len(buf)
		buf = AppendRecord(buf, Record{User: user, Op: op})
		// ReadRecord treats frames beyond maxPayload as corruption, so a
		// record that large must never reach the file: it would be
		// unreplayable and poison every record behind it. Latch the error
		// without writing the batch; memory state stays ahead of disk,
		// exactly as for any other append failure.
		if p := len(buf) - start - frameHeader; p > maxPayload {
			lg.scratch = buf
			w.fail(fmt.Errorf("mailstore: record for %v: %w: payload %d > %d bytes",
				user, ErrRecordTooLarge, p, maxPayload))
			return
		}
	}
	lg.scratch = buf

	start := time.Now()
	if _, err := lg.f.Write(buf); err != nil {
		w.fail(fmt.Errorf("mailstore: wal append: %w", err))
		return
	}
	if w.fsync == FsyncAlways {
		if err := lg.f.Sync(); err != nil {
			w.fail(fmt.Errorf("mailstore: wal sync: %w", err))
			return
		}
		w.syncs.Add(1)
	}
	w.appendNs.Add(time.Since(start).Nanoseconds())
	w.appends.Add(1)
	w.bytes.Add(int64(len(buf)))
	lg.size += int64(len(buf))
	lg.sinceCompact += int64(len(buf))

	sh := &s.shards[i]
	if lg.sinceCompact >= w.compactBytes && lg.sinceCompact >= sh.bytes {
		if err := s.compactShard(i); err != nil {
			w.fail(err)
		}
		return
	}
	if lg.size >= w.segmentBytes {
		if err := lg.rotate(); err != nil {
			w.fail(err)
			return
		}
		w.rotations.Add(1)
		w.syncs.Add(1)
	}
}

// fail latches the first WAL error.
func (w *wal) fail(err error) { w.errp.CompareAndSwap(nil, &err) }

// rotate seals the open segment (sync) and starts the next one.
func (lg *shardLog) rotate() error {
	if err := lg.f.Sync(); err != nil {
		return fmt.Errorf("mailstore: seal segment: %w", err)
	}
	if err := lg.f.Close(); err != nil {
		return fmt.Errorf("mailstore: seal segment: %w", err)
	}
	lg.seq++
	f, err := createSegment(lg.dir, segPath(lg.dir, lg.seq))
	if err != nil {
		return err
	}
	lg.f, lg.size = f, int64(len(segMagic))
	return nil
}

// suppressChunk bounds the IDs per snapshot Suppress record so one record
// stays far below maxPayload even for a mailbox with a huge seen-set.
const suppressChunk = 64 << 10

// compactShard writes shard i's entire live state as a snapshot segment and
// deletes every older file. Called with the shard write lock held. The
// snapshot is ordinary records — per user (sorted): the stored messages as
// Deposit ops in arrival order, then Suppress ops for the seen-but-not-
// stored IDs. Deposits must precede suppressions: the other order would
// dup-suppress the deposits on replay. The snapshot's "snap-" name is what
// makes the deletions crash-safe: recovery starts at the newest snapshot, so
// history that survives a kill mid-deletion is ignored, not replayed.
func (s *Store) compactShard(i int) error {
	w, lg, sh := s.w, s.w.logs[i], &s.shards[i]

	users := make([]names.Name, 0, len(sh.boxes))
	for u := range sh.boxes {
		users = append(users, u)
	}
	sort.Slice(users, func(a, b int) bool { return users[a].String() < users[b].String() })

	buf := lg.scratch[:0]
	buf = append(buf, segMagic...)
	for _, u := range users {
		mb := sh.boxes[u]
		stored := make(map[mail.MessageID]bool, mb.Len())
		for _, st := range mb.Peek() {
			stored[st.ID] = true
			start := len(buf)
			buf = AppendRecord(buf, Record{User: u, Op: mail.Op{
				Kind: mail.OpDeposit, Msg: st.Message, At: st.ArrivedAt, Read: st.Read,
			}})
			if p := len(buf) - start - frameHeader; p > maxPayload {
				lg.scratch = buf
				return fmt.Errorf("mailstore: snapshot record for %v: %w: payload %d > %d bytes",
					u, ErrRecordTooLarge, p, maxPayload)
			}
		}
		var unstored []mail.MessageID
		for _, id := range mb.SeenIDs() {
			if !stored[id] {
				unstored = append(unstored, id)
			}
		}
		for len(unstored) > 0 {
			n := min(len(unstored), suppressChunk)
			buf = AppendRecord(buf, Record{User: u, Op: mail.Op{Kind: mail.OpSuppress, IDs: unstored[:n]}})
			unstored = unstored[n:]
		}
	}
	lg.scratch = buf

	lg.seq++
	path := snapPath(lg.dir, lg.seq)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("mailstore: snapshot: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("mailstore: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("mailstore: snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		return fmt.Errorf("mailstore: snapshot: %w", err)
	}
	// The rename is only durable once the directory entry is — sync the dir
	// before unlinking history, or an OS crash could keep the unlinks but
	// lose the snapshot.
	if err := syncDir(lg.dir); err != nil {
		f.Close()
		return err
	}
	// The snapshot is durable under its final name; retire the history.
	lg.f.Close()
	entries, err := os.ReadDir(lg.dir)
	if err != nil {
		f.Close()
		return fmt.Errorf("mailstore: compact: %w", err)
	}
	for _, e := range entries {
		seq, _, ok := parseSegName(e.Name())
		if !ok || seq >= lg.seq {
			continue
		}
		if err := os.Remove(filepath.Join(lg.dir, e.Name())); err != nil && !errors.Is(err, os.ErrNotExist) {
			f.Close()
			return fmt.Errorf("mailstore: compact: %w", err)
		}
	}
	lg.f, lg.size, lg.sinceCompact = f, int64(len(buf)), 0
	w.compactions.Add(1)
	w.syncs.Add(1)
	return nil
}

// durable reports whether the store has a WAL behind it.
func (s *Store) durable() bool { return s.w != nil }

// Dir returns the durable store's root directory ("" for memory stores).
func (s *Store) Dir() string {
	if s.w == nil {
		return ""
	}
	return s.w.dir
}

// LastStartTime is the wall-clock instant recovery completed — the real
// "server up since" stamp §3.1.2c's GetMail compares against. Zero for
// memory-only stores.
func (s *Store) LastStartTime() time.Time {
	if s.w == nil {
		return time.Time{}
	}
	return s.w.lastStart
}

// WALStats snapshots the write-path counters; ok is false on memory stores.
func (s *Store) WALStats() (st WALStats, ok bool) {
	if s.w == nil {
		return WALStats{}, false
	}
	return WALStats{
		Appends:     s.w.appends.Load(),
		Bytes:       s.w.bytes.Load(),
		AppendNs:    s.w.appendNs.Load(),
		Syncs:       s.w.syncs.Load(),
		Rotations:   s.w.rotations.Load(),
		Compactions: s.w.compactions.Load(),
	}, true
}

// RecoveryStats reports what Open replayed; ok is false on memory stores.
func (s *Store) RecoveryStats() (st RecoveryStats, ok bool) {
	if s.w == nil {
		return RecoveryStats{}, false
	}
	return s.w.recovery, true
}

// Err returns the first WAL append error, if any. After an append error the
// store keeps serving from memory but stops logging; the owner should
// surface the error and treat the on-disk state as stale.
func (s *Store) Err() error {
	if s.w == nil {
		return nil
	}
	if p := s.w.errp.Load(); p != nil {
		return *p
	}
	return nil
}

// Close syncs and closes every shard log. Idempotent; nil for memory
// stores. The store remains readable (memory state is untouched) but
// further mutations are no longer logged.
func (s *Store) Close() error {
	if s.w == nil || !s.w.closed.CompareAndSwap(false, true) {
		return nil
	}
	var first error
	for i, lg := range s.w.logs {
		if lg == nil {
			continue
		}
		sh := &s.shards[i]
		sh.mu.Lock()
		if lg.f != nil {
			if err := lg.f.Sync(); err != nil && first == nil {
				first = err
			}
			if err := lg.f.Close(); err != nil && first == nil {
				first = err
			}
			lg.f = nil
		}
		sh.mu.Unlock()
	}
	return first
}

func roundShards(n int) int {
	if n <= 0 {
		n = DefaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return size
}
