package mailstore

import (
	"bytes"
	"errors"
	"testing"

	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/names"
)

// fuzzSeedRecords are well-formed frames covering every op kind, so the
// fuzzer starts from valid structure rather than having to discover the
// CRC by accident.
func fuzzSeedRecords() [][]byte {
	alice := names.Name{Region: "R0", Host: "h0", User: "alice"}
	bob := names.Name{Region: "R1", Host: "h2", User: "bob"}
	m := mail.Message{
		ID: mail.MessageID{Node: 3, Seq: 17}, From: alice, To: []names.Name{bob},
		Subject: "hi", Body: "see you", SubmittedAt: 42, Expansions: 1,
	}
	m.AddPart(mail.ContentVoice, []byte{0x01, 0x02})
	recs := []Record{
		{User: bob, Op: mail.Op{Kind: mail.OpDeposit, Msg: m, At: 50, Read: true}},
		{User: bob, Op: mail.Op{Kind: mail.OpDrain}},
		{User: bob, Op: mail.Op{Kind: mail.OpMarkRead, IDs: []mail.MessageID{{Node: 3, Seq: 17}}}},
		{User: bob, Op: mail.Op{Kind: mail.OpEvict, IDs: []mail.MessageID{{Node: 3, Seq: 17}, {Node: 9, Seq: 1}}}},
		{User: bob, Op: mail.Op{Kind: mail.OpSuppress, IDs: []mail.MessageID{{Node: 1, Seq: 1}}}},
		{User: names.Name{}, Op: mail.Op{Kind: mail.OpDeposit}},
	}
	var out [][]byte
	for _, r := range recs {
		out = append(out, AppendRecord(nil, r))
	}
	// Two records back to back: ReadRecord must consume exactly the first.
	out = append(out, AppendRecord(AppendRecord(nil, recs[1]), recs[2]))
	return out
}

// FuzzWALRecord feeds arbitrary bytes through the WAL frame decoder.
// Properties: no panic on any input; every failure is a typed framing error
// (torn or corrupt, the two cases recovery distinguishes); and decoding is
// canonically stable — a decoded record re-encodes to a fixed point, so the
// state replayed from disk is exactly the state a clean writer would have
// logged. The double round trip matters because varints accept non-minimal
// encodings: the *input* need not equal the canonical form, but the
// canonical form must re-decode to itself.
func FuzzWALRecord(f *testing.F) {
	for _, seed := range fuzzSeedRecords() {
		f.Add(seed)
		// Torn and corrupt variants of a valid frame.
		if len(seed) > 10 {
			f.Add(seed[:len(seed)-3])
			flipped := append([]byte(nil), seed...)
			flipped[len(flipped)/2] ^= 0x40
			f.Add(flipped)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, buf []byte) {
		rec, n, err := ReadRecord(buf)
		if err != nil {
			if !errors.Is(err, ErrTornRecord) && !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if n < frameHeader || n > len(buf) {
			t.Fatalf("consumed %d of %d bytes", n, len(buf))
		}
		first := AppendRecord(nil, rec)
		again, m, err := ReadRecord(first)
		if err != nil {
			t.Fatalf("canonical frame rejected: %v", err)
		}
		if m != len(first) {
			t.Fatalf("canonical frame consumed %d of %d bytes", m, len(first))
		}
		second := AppendRecord(nil, again)
		if !bytes.Equal(first, second) {
			t.Fatalf("encode/decode not a fixed point:\n%x\n%x", first, second)
		}
	})
}
