package mailstore

import (
	"fmt"
	"sync"
	"testing"

	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/names"
)

func user(i int) names.Name {
	return names.MustParse(fmt.Sprintf("R0.h%d.u%d", i%7, i))
}

func msg(seq uint64, body string) mail.Message {
	return mail.Message{ID: mail.MessageID{Node: 1, Seq: seq}, Subject: "s", Body: body}
}

func TestCountersTrackMutations(t *testing.T) {
	s := New(4)
	if s.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", s.Shards())
	}
	u1, u2 := user(1), user(2)
	if !s.Deposit(u1, msg(1, "aaaa"), 0) {
		t.Fatal("first deposit not fresh")
	}
	if s.Deposit(u1, msg(1, "aaaa"), 0) {
		t.Fatal("duplicate deposit reported fresh")
	}
	s.Deposit(u1, msg(2, "bb"), 0)
	s.Deposit(u2, msg(3, "c"), 0)
	wantBytes := int64(len("s")*3 + 4 + 2 + 1)
	if got := s.TotalBytes(); got != wantBytes {
		t.Errorf("TotalBytes = %d, want %d", got, wantBytes)
	}
	if got := s.TotalMessages(); got != 3 {
		t.Errorf("TotalMessages = %d, want 3", got)
	}
	if got := s.Len(u1); got != 2 {
		t.Errorf("Len(u1) = %d, want 2", got)
	}

	// Drain empties the counters for that user but keeps the mailbox (and
	// its duplicate-suppression memory).
	out := s.Drain(u1)
	if len(out) != 2 {
		t.Fatalf("Drain = %d messages, want 2", len(out))
	}
	if got := s.TotalMessages(); got != 1 {
		t.Errorf("TotalMessages after drain = %d, want 1", got)
	}
	if got := s.TotalBytes(); got != int64(len("s")+1) {
		t.Errorf("TotalBytes after drain = %d", got)
	}
	if s.Deposit(u1, msg(1, "aaaa"), 0) {
		t.Error("re-deposit of drained message not suppressed")
	}
	if got := s.NumUsers(); got != 2 {
		t.Errorf("NumUsers = %d, want 2 (drained mailbox must persist)", got)
	}
}

func TestCountersTrackCleanup(t *testing.T) {
	s := New(2)
	u := user(9)
	for i := 1; i <= 5; i++ {
		s.Deposit(u, msg(uint64(i), "xy"), 0)
	}
	var evicted int
	s.Update(u, func(mb *mail.Mailbox) {
		evicted = len(mb.Cleanup(mail.Retention{MaxMessages: 2}, 0))
	})
	if evicted != 3 {
		t.Fatalf("evicted %d, want 3", evicted)
	}
	if got := s.TotalMessages(); got != 2 {
		t.Errorf("TotalMessages after cleanup = %d, want 2", got)
	}
	if got := s.TotalBytes(); got != int64(2*(len("s")+2)) {
		t.Errorf("TotalBytes after cleanup = %d", got)
	}
}

func TestUsersSortedDeterministic(t *testing.T) {
	s := New(8)
	for i := 0; i < 50; i++ {
		s.Deposit(user(i), msg(uint64(i+1), "b"), 0)
	}
	us := s.Users()
	if len(us) != 50 {
		t.Fatalf("Users = %d, want 50", len(us))
	}
	for i := 1; i < len(us); i++ {
		if us[i-1].String() >= us[i].String() {
			t.Fatalf("Users not sorted at %d: %v >= %v", i, us[i-1], us[i])
		}
	}
}

func TestViewAndUpdateExisting(t *testing.T) {
	s := New(0) // DefaultShards
	u := user(3)
	if s.UpdateExisting(u, func(mb *mail.Mailbox) { t.Error("fn called for absent user") }) {
		t.Error("UpdateExisting reported true for absent user")
	}
	if s.View(u, func(mb *mail.Mailbox) { t.Error("fn called for absent user") }) {
		t.Error("View reported true for absent user")
	}
	if got := s.Peek(u); got != nil {
		t.Errorf("Peek(absent) = %v", got)
	}
	s.Deposit(u, msg(1, "b"), 7)
	seen := false
	s.View(u, func(mb *mail.Mailbox) { seen = mb.Len() == 1 && mb.Peek()[0].ArrivedAt == 7 })
	if !seen {
		t.Error("View did not observe the deposit")
	}
}

func TestConcurrentDeposits(t *testing.T) {
	s := New(8)
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				u := user((w*perWorker + i) % 40)
				s.Deposit(u, msg(uint64(w*perWorker+i+1), "bb"), 0)
				s.Len(u)
				s.TotalBytes()
			}
		}(w)
	}
	wg.Wait()
	if got := s.TotalMessages(); got != workers*perWorker {
		t.Fatalf("TotalMessages = %d, want %d", got, workers*perWorker)
	}
	if got := s.TotalBytes(); got != int64(workers*perWorker*(len("s")+2)) {
		t.Fatalf("TotalBytes = %d", got)
	}
}

// BenchmarkTotalBytes pins the StoredBytes fix: the sum must be O(shards),
// independent of the number of mailboxes. Compare ns/op across the sizes —
// they stay flat where the old flat-map scan grew linearly.
func BenchmarkTotalBytes(b *testing.B) {
	for _, boxes := range []int{100, 10_000, 100_000} {
		b.Run(fmt.Sprintf("mailboxes=%d", boxes), func(b *testing.B) {
			s := New(DefaultShards)
			for i := 0; i < boxes; i++ {
				s.Deposit(names.MustParse(fmt.Sprintf("R0.h%d.u%d", i%97, i)),
					msg(uint64(i+1), "payload"), 0)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if s.TotalBytes() == 0 {
					b.Fatal("empty store")
				}
			}
		})
	}
}
