package mailstore

import (
	"sort"
	"strings"

	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/sim"
	"github.com/largemail/largemail/internal/sketch"
)

// Term-index limits: tokens shorter than minTermLen or longer than
// maxTermLen are not indexed, and one message contributes at most
// maxTermsPerMsg distinct terms, so a pathological body cannot blow up the
// index.
const (
	minTermLen     = 2
	maxTermLen     = 32
	maxTermsPerMsg = 64
)

// Terms tokenizes a message's subject and body into its indexable terms:
// lower-cased runs of letters and digits, length-bounded, de-duplicated,
// capped at maxTermsPerMsg, in first-appearance order.
func Terms(subject, body string) []string {
	var out []string
	seen := make(map[string]bool)
	emit := func(tok string) {
		if len(tok) < minTermLen || len(tok) > maxTermLen || seen[tok] {
			return
		}
		seen[tok] = true
		out = append(out, tok)
	}
	split := func(s string) {
		start := -1
		for i, r := range s {
			alnum := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9'
			if alnum {
				if start < 0 {
					start = i
				}
				continue
			}
			if start >= 0 {
				emit(strings.ToLower(s[start:i]))
				start = -1
			}
			if len(out) >= maxTermsPerMsg {
				return
			}
		}
		if start >= 0 && len(out) < maxTermsPerMsg {
			emit(strings.ToLower(s[start:]))
		}
	}
	split(subject)
	if len(out) < maxTermsPerMsg {
		split(body)
	}
	return out
}

// EnableTermIndex turns on the per-shard term index, rebuilding it from the
// messages already buffered. The index maps each term to the users whose
// buffered mail contains it, and is maintained by Deposit and Drain under
// the same shard lock as the mailbox mutation — content retrieval (the §3.3
// attribute queries that address message content rather than profiles) then
// reads the durable store, not a side structure that can drift.
//
// Mutations made through raw Update/UpdateExisting closures bypass the
// index; stores that enable it must route message flow through
// Deposit/Drain (both transports do).
func (s *Store) EnableTermIndex() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.terms = make(map[string]map[names.Name]int)
		sh.sk = sketch.NewCounting()
		sh.skGen++
		for u, mb := range sh.boxes {
			for _, st := range mb.Peek() {
				sh.indexAdd(u, st.Message)
			}
		}
		sh.mu.Unlock()
	}
}

// TermIndexed reports whether the term index is on.
func (s *Store) TermIndexed() bool {
	sh := &s.shards[0]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.terms != nil
}

// indexAdd references every term of m for user. Caller holds the shard lock.
func (sh *shard) indexAdd(user names.Name, m mail.Message) {
	for _, t := range Terms(m.Subject, m.Body) {
		users := sh.terms[t]
		if users == nil {
			users = make(map[names.Name]int)
			sh.terms[t] = users
			// First reference in this shard: the term joins the sketch.
			sh.sk.Add(t)
			sh.skGen++
		}
		users[user]++
	}
}

// indexRemove drops one reference per term of m for user. Caller holds the
// shard lock.
func (sh *shard) indexRemove(user names.Name, m mail.Message) {
	for _, t := range Terms(m.Subject, m.Body) {
		users := sh.terms[t]
		if users == nil {
			continue
		}
		if users[user]--; users[user] <= 0 {
			delete(users, user)
			if len(users) == 0 {
				delete(sh.terms, t)
				// Last reference gone: counting filters subtract exactly.
				sh.sk.Remove(t)
				sh.skGen++
			}
		}
	}
}

// SearchTerm returns the users with at least one buffered message containing
// the term (case-insensitive), sorted by name. It returns nil when the index
// is disabled.
func (s *Store) SearchTerm(term string) []names.Name {
	term = strings.ToLower(strings.TrimSpace(term))
	if term == "" {
		return nil
	}
	var out []names.Name
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for u := range sh.terms[term] {
			out = append(out, u)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// SearchTerms returns the users whose buffered mail contains every one of
// the terms (conjunction), sorted by name — the evaluation form of a
// planned content query's probe terms. Nil for an empty term list or a
// disabled index.
func (s *Store) SearchTerms(terms []string) []names.Name {
	if len(terms) == 0 {
		return nil
	}
	hold := make(map[names.Name]int)
	for _, t := range terms {
		for _, u := range s.SearchTerm(t) {
			hold[u]++
		}
	}
	var out []names.Name
	for u, n := range hold {
		if n == len(terms) {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// depositIndexed is the native Deposit body: mailbox mutation, counter
// reconciliation, WAL append and index maintenance under one shard lock.
func (s *Store) depositIndexed(user names.Name, m mail.Message, at sim.Time) bool {
	i := s.shardIndex(user)
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	mb, ok := sh.boxes[user]
	if !ok {
		mb = mail.NewMailbox(user)
		if s.w != nil {
			mb.EnableJournal()
		}
		sh.boxes[user] = mb
	}
	l0, b0 := mb.Len(), mb.Bytes()
	fresh := mb.Deposit(m, at)
	sh.msgs += int64(mb.Len() - l0)
	sh.bytes += int64(mb.Bytes() - b0)
	if s.w != nil {
		s.logOps(i, user, mb)
	}
	if fresh && sh.terms != nil {
		sh.indexAdd(user, m)
	}
	return fresh
}

// drainIndexed is the native Drain body; drained messages release their
// index references.
func (s *Store) drainIndexed(user names.Name) []mail.Stored {
	i := s.shardIndex(user)
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	mb, ok := sh.boxes[user]
	if !ok {
		return nil
	}
	l0, b0 := mb.Len(), mb.Bytes()
	out := mb.Drain()
	sh.msgs += int64(mb.Len() - l0)
	sh.bytes += int64(mb.Bytes() - b0)
	if s.w != nil {
		s.logOps(i, user, mb)
	}
	if sh.terms != nil {
		for _, st := range out {
			sh.indexRemove(user, st.Message)
		}
	}
	return out
}
