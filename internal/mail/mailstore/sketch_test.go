package mailstore

import (
	"fmt"
	"testing"

	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/names"
)

func skName(i int) names.Name {
	return names.Name{Region: "R0", Host: "h0", User: fmt.Sprintf("u%d", i)}
}

func skMsg(id int, body string) mail.Message {
	return mail.Message{
		ID:      mail.MessageID{Node: 7, Seq: uint64(id)},
		From:    skName(999),
		Subject: "s",
		Body:    body,
	}
}

func TestSketchTracksDepositDrain(t *testing.T) {
	s := New(4)
	s.EnableTermIndex()

	f, gen0 := s.Sketch()
	if f == nil {
		t.Fatal("Sketch nil with index enabled")
	}
	if f.MayContain("budget") {
		t.Fatal("empty store claims to contain budget")
	}

	s.Deposit(skName(1), skMsg(1, "the budget meeting"), 0)
	f, gen1 := s.Sketch()
	if !f.MayContain("budget") || !f.MayContain("meeting") {
		t.Fatal("sketch missing deposited terms")
	}
	if gen1 == gen0 {
		t.Fatal("generation did not advance on deposit")
	}

	// Draining the only holder must clear the term and advance the
	// generation again.
	s.Drain(skName(1))
	f, gen2 := s.Sketch()
	if f.MayContain("budget") {
		t.Fatal("sketch still contains budget after drain")
	}
	if gen2 == gen1 {
		t.Fatal("generation did not advance on drain")
	}
	if got := s.SketchGen(); got != gen2 {
		t.Fatalf("SketchGen %d != Sketch generation %d", got, gen2)
	}
}

func TestSketchSharedTermSurvivesPartialDrain(t *testing.T) {
	s := New(4)
	s.EnableTermIndex()
	s.Deposit(skName(1), skMsg(1, "offsite"), 0)
	s.Deposit(skName(2), skMsg(2, "offsite"), 0)
	s.Drain(skName(1))
	f, _ := s.Sketch()
	if !f.MayContain("offsite") {
		t.Fatal("term lost while another mailbox still holds it")
	}
}

func TestSketchDisabledWithoutIndex(t *testing.T) {
	s := New(4)
	if f, gen := s.Sketch(); f != nil || gen != 0 {
		t.Fatal("Sketch must be nil while the term index is off")
	}
}

func TestSketchRebuildOnEnable(t *testing.T) {
	// EnableTermIndex after the fact must fold already-buffered mail into
	// the sketch, matching the index rebuild.
	s := New(4)
	s.Deposit(skName(3), skMsg(3, "seminar deadline"), 0)
	s.EnableTermIndex()
	f, _ := s.Sketch()
	for _, tm := range []string{"seminar", "deadline"} {
		if !f.MayContain(tm) {
			t.Fatalf("rebuilt sketch missing %q", tm)
		}
	}
}
