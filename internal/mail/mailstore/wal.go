// WAL record codec. Each durable mutation is one framed record:
//
//	uint32 LE payload length | uint32 LE CRC32-IEEE(payload) | payload
//
// The payload is a compact binary encoding of (user, op): a kind byte, the
// owner name, then kind-specific fields (varint integers, length-prefixed
// strings). The frame is what makes replay safe: a torn tail — a record cut
// short by a crash mid-append — fails the length or checksum test and is
// truncated away, while any record that passes CRC decodes fully or the
// segment is declared corrupt.
package mailstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/sim"
)

// Record is one journaled mailbox mutation attributed to its owner: the unit
// of the per-shard WAL.
type Record struct {
	User names.Name
	Op   mail.Op
}

// Framing errors. A torn record is the expected shape of a crash mid-append
// and is recoverable (truncate the tail); a corrupt record means bytes that
// were acknowledged as written no longer checksum, which is only tolerable
// at the very tail of the newest segment.
var (
	ErrTornRecord    = errors.New("mailstore: torn record (short frame)")
	ErrCorruptRecord = errors.New("mailstore: corrupt record")
	// ErrRecordTooLarge marks an append rejected because its encoded payload
	// exceeds maxPayload. ReadRecord treats such frames as corruption, so
	// writing one would poison the segment behind it; the writer latches this
	// error instead (see Store.Err).
	ErrRecordTooLarge = errors.New("mailstore: record exceeds max payload")
)

const (
	frameHeader = 8 // uint32 length + uint32 crc
	// maxPayload bounds a single record. A frame length beyond it is treated
	// as corruption rather than an allocation request: a flipped bit in the
	// length field must not ask for gigabytes.
	maxPayload = 16 << 20
)

var crcTable = crc32.MakeTable(crc32.IEEE)

// AppendRecord appends the framed encoding of rec to dst and returns the
// extended slice.
func AppendRecord(dst []byte, rec Record) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	dst = appendPayload(dst, rec)
	payload := dst[start+frameHeader:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, crcTable))
	return dst
}

// ReadRecord decodes the first framed record in buf, returning the record
// and the number of bytes consumed. ErrTornRecord means buf ends before the
// frame does (crash mid-append); ErrCorruptRecord means the frame is
// complete but fails its checksum or does not decode.
func ReadRecord(buf []byte) (Record, int, error) {
	if len(buf) < frameHeader {
		return Record{}, 0, ErrTornRecord
	}
	n := binary.LittleEndian.Uint32(buf)
	if n > maxPayload {
		return Record{}, 0, fmt.Errorf("%w: frame length %d", ErrCorruptRecord, n)
	}
	if len(buf) < frameHeader+int(n) {
		return Record{}, 0, ErrTornRecord
	}
	payload := buf[frameHeader : frameHeader+int(n)]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(buf[4:]) {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorruptRecord)
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, frameHeader + int(n), nil
}

func appendPayload(dst []byte, rec Record) []byte {
	dst = append(dst, byte(rec.Op.Kind))
	dst = appendName(dst, rec.User)
	switch rec.Op.Kind {
	case mail.OpDeposit:
		m := rec.Op.Msg
		dst = appendUvarint(dst, uint64(m.ID.Node))
		dst = appendUvarint(dst, m.ID.Seq)
		dst = appendName(dst, m.From)
		dst = appendUvarint(dst, uint64(len(m.To)))
		for _, to := range m.To {
			dst = appendName(dst, to)
		}
		dst = appendString(dst, m.Subject)
		dst = appendString(dst, m.Body)
		dst = binary.AppendVarint(dst, int64(m.SubmittedAt))
		dst = appendUvarint(dst, uint64(m.Expansions))
		dst = appendUvarint(dst, uint64(len(m.Parts)))
		for _, p := range m.Parts {
			dst = appendString(dst, string(p.Type))
			dst = appendUvarint(dst, uint64(len(p.Data)))
			dst = append(dst, p.Data...)
		}
		dst = binary.AppendVarint(dst, int64(rec.Op.At))
		if rec.Op.Read {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case mail.OpDrain:
		// no fields
	case mail.OpMarkRead, mail.OpEvict, mail.OpSuppress:
		dst = appendUvarint(dst, uint64(len(rec.Op.IDs)))
		for _, id := range rec.Op.IDs {
			dst = appendUvarint(dst, uint64(id.Node))
			dst = appendUvarint(dst, id.Seq)
		}
	}
	return dst
}

func decodePayload(payload []byte) (Record, error) {
	d := decoder{buf: payload}
	var rec Record
	kind := mail.OpKind(d.byte())
	rec.Op.Kind = kind
	rec.User = d.name()
	switch kind {
	case mail.OpDeposit:
		m := &rec.Op.Msg
		m.ID.Node = graph.NodeID(d.uvarint())
		m.ID.Seq = d.uvarint()
		m.From = d.name()
		nTo := d.count()
		for i := 0; i < nTo && d.err == nil; i++ {
			m.To = append(m.To, d.name())
		}
		m.Subject = d.string()
		m.Body = d.string()
		m.SubmittedAt = sim.Time(d.varint())
		m.Expansions = int(d.uvarint())
		nParts := d.count()
		for i := 0; i < nParts && d.err == nil; i++ {
			typ := d.string()
			data := d.bytes()
			m.Parts = append(m.Parts, mail.Part{Type: mail.ContentType(typ), Data: data})
		}
		rec.Op.At = sim.Time(d.varint())
		rec.Op.Read = d.byte() != 0
	case mail.OpDrain:
		// no fields
	case mail.OpMarkRead, mail.OpEvict, mail.OpSuppress:
		n := d.count()
		for i := 0; i < n && d.err == nil; i++ {
			node := graph.NodeID(d.uvarint())
			seq := d.uvarint()
			rec.Op.IDs = append(rec.Op.IDs, mail.MessageID{Node: node, Seq: seq})
		}
	default:
		return Record{}, fmt.Errorf("%w: unknown op kind %d", ErrCorruptRecord, kind)
	}
	if d.err != nil {
		return Record{}, d.err
	}
	if len(d.buf) != 0 {
		return Record{}, fmt.Errorf("%w: %d trailing payload bytes", ErrCorruptRecord, len(d.buf))
	}
	return rec, nil
}

func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendName(dst []byte, n names.Name) []byte {
	dst = appendString(dst, n.Region)
	dst = appendString(dst, n.Host)
	return appendString(dst, n.User)
}

// decoder is a cursor over a payload; the first malformed field sets err and
// every later read returns zero values, so decodePayload checks err once.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: bad %s", ErrCorruptRecord, what)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.buf) < 1 {
		d.fail("byte")
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// count reads a collection length, bounded by the bytes that remain: each
// element costs at least one byte, so a count beyond len(buf) is corruption,
// not a huge allocation.
func (d *decoder) count() int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.buf)) {
		d.fail("count")
		return 0
	}
	return int(v)
}

func (d *decoder) bytes() []byte {
	n := d.count()
	if d.err != nil || n == 0 {
		return nil
	}
	out := append([]byte(nil), d.buf[:n]...)
	d.buf = d.buf[n:]
	return out
}

func (d *decoder) string() string {
	n := d.count()
	if d.err != nil {
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) name() names.Name {
	return names.Name{Region: d.string(), Host: d.string(), User: d.string()}
}
