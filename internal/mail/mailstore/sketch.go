package mailstore

import "github.com/largemail/largemail/internal/sketch"

// Sketch returns a point-in-time Bloom snapshot of the store's live term set
// together with its staleness generation: the OR of every shard's counting
// filter, and the sum of the per-shard mutation counters at the moment each
// shard was read. A caller that caches the snapshot (the broadcast layer's
// subtree aggregation) compares a later SketchGen against the recorded
// generation; inequality means the term set may have changed and the cache
// must fail open.
//
// Shards are snapshotted one at a time under their own read locks, so the
// composite is not a single atomic cut — it can weave together states from
// slightly different instants. That is safe for pruning exactly because the
// generation is read under the same per-shard lock as the bits: any
// mutation racing the snapshot bumps a counter the caller's next SketchGen
// sum will expose as staleness.
//
// Returns (nil, 0) while the term index is disabled: no sketch means no
// proof of absence, so consumers must visit.
func (s *Store) Sketch() (*sketch.Filter, uint64) {
	if !s.TermIndexed() {
		return nil, 0
	}
	f := sketch.NewFilter()
	var gen uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		if sh.sk != nil {
			f.Or(sh.sk.Snapshot())
			gen += sh.skGen
		}
		sh.mu.RUnlock()
	}
	return f, gen
}

// SketchGen returns the current staleness generation without materialising
// the bits — the cheap probe the pruning path uses to decide whether a
// cached subtree sketch is still trustworthy.
func (s *Store) SketchGen() uint64 {
	var gen uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		gen += sh.skGen
		sh.mu.RUnlock()
	}
	return gen
}
