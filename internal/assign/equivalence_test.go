package assign

import (
	"math"
	"math/rand"
	"testing"

	"github.com/largemail/largemail/internal/graph"
)

// randomEquivInstance builds a random balancing instance on a connected
// topology with distinct integer edge weights (so every communication cost,
// and therefore every accept/undo comparison, is exactly representable —
// see reference.go).
func randomEquivInstance(seed int64) Config {
	rng := rand.New(rand.NewSource(seed))
	n := 10 + rng.Intn(30)
	g := graph.RandomConnected(rng, n, n/2+rng.Intn(n), 1)
	ids := g.NodeIDs()
	numServers := 2 + rng.Intn(5)
	servers := ids[:numServers]
	hosts := ids[numServers:]
	users := make(map[graph.NodeID]int)
	maxLoad := make(map[graph.NodeID]int)
	total := 0
	for _, h := range hosts {
		if rng.Intn(6) == 0 {
			users[h] = 0 // zero-population hosts must be tolerated
			continue
		}
		users[h] = rng.Intn(80)
		total += users[h]
	}
	for _, s := range servers {
		maxLoad[s] = total/numServers + 10 + rng.Intn(40)
	}
	commW, procW, procTime := PaperWeights()
	return Config{
		Topology: g, Hosts: hosts, Servers: servers,
		Users: users, MaxLoad: maxLoad,
		ProcTime: procTime, CommW: commW, ProcW: procW,
		MoveBatch: 1 + rng.Intn(8),
	}
}

func sameStats(a, b BalanceStats) bool {
	if a.Sweeps != b.Sweeps || a.Moves != b.Moves ||
		a.UsersMoved != b.UsersMoved || a.Undone != b.Undone {
		return false
	}
	if len(a.Overloaded) != len(b.Overloaded) {
		return false
	}
	for i := range a.Overloaded {
		if a.Overloaded[i] != b.Overloaded[i] {
			return false
		}
	}
	return true
}

// The optimized dense engine must reproduce the retained map-based
// reference bit-for-bit: same communication costs, same accepted/undone
// moves, same final assignment, loads, and stats, on random topologies.
func TestPropertyDenseMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		cfg := randomEquivInstance(seed)
		dense, err := New(cfg)
		if err != nil {
			t.Fatalf("seed %d: New: %v", seed, err)
		}
		ref, err := referenceBalance(cfg)
		if err != nil {
			t.Fatalf("seed %d: referenceBalance: %v", seed, err)
		}
		// The parallel Dijkstra fan-out must agree with the serial per-host
		// ShortestPaths the reference uses.
		for _, h := range cfg.Hosts {
			for _, s := range cfg.Servers {
				got, want := dense.Comm(h, s), ref.comm[h][s]
				if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
					t.Fatalf("seed %d: Comm(%d,%d) = %v, reference %v", seed, h, s, got, want)
				}
			}
		}
		sDense := dense.Run()
		sRef := ref.run()
		if !sameStats(sDense, sRef) {
			t.Fatalf("seed %d: stats diverged: dense %+v, reference %+v", seed, sDense, sRef)
		}
		for _, h := range cfg.Hosts {
			for _, s := range cfg.Servers {
				if got, want := dense.Assigned(h, s), ref.users[h][s]; got != want {
					t.Fatalf("seed %d: Assigned(%d,%d) = %d, reference %d", seed, h, s, got, want)
				}
			}
		}
		for _, s := range cfg.Servers {
			if got, want := dense.Load(s), ref.loads[s]; got != want {
				t.Fatalf("seed %d: Load(%d) = %d, reference %d", seed, s, got, want)
			}
		}
		// Integer communication costs: the incremental ΣnC and the rescan
		// agree exactly, so the total costs must too.
		if got, want := dense.TotalCost(), ref.totalCost(); got != want {
			t.Fatalf("seed %d: TotalCost = %v, reference %v", seed, got, want)
		}
		// Both engines must agree the state is stable.
		if m1, m2 := dense.Balance().Moves, ref.balance().Moves; m1 != 0 || m2 != 0 {
			t.Fatalf("seed %d: post-balance moves dense=%d reference=%d, want 0", seed, m1, m2)
		}
	}
}

// Equivalence must also hold when the channel-utilization modification
// rescales edge weights (costs stop being integers, so compare with a
// tolerance and require identical integer state but allow the rare case of
// both engines making the same decisions — seeds where they diverge on
// sub-ulp cost ties would fail loudly).
func TestDenseMatchesReferenceChannelUtil(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		cfg := randomEquivInstance(seed)
		cfg.ChannelUtil = func(a, b graph.NodeID) float64 {
			return float64((int(a)+int(b))%5) / 10 // ρ ∈ {0, .1, .2, .3, .4}
		}
		dense, err := New(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ref, err := referenceBalance(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sDense := dense.Run()
		sRef := ref.run()
		if !sameStats(sDense, sRef) {
			t.Fatalf("seed %d: stats diverged: dense %+v, reference %+v", seed, sDense, sRef)
		}
		for _, s := range cfg.Servers {
			if dense.Load(s) != ref.loads[s] {
				t.Fatalf("seed %d: loads diverged on server %d", seed, s)
			}
		}
		if got, want := dense.TotalCost(), ref.totalCost(); math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("seed %d: TotalCost = %v, reference %v", seed, got, want)
		}
	}
}

// After a burst of reconfiguration ops, rebuilding the dense engine from
// the mutated config must agree with a fresh reference run — reconfig keeps
// the dense state (index maps, running sums) consistent.
func TestReconfigKeepsDenseStateConsistent(t *testing.T) {
	cfg := randomEquivInstance(7)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Run()
	// Exercise every reconfig op.
	ids := cfg.Topology.NodeIDs()
	newServer := cfg.Hosts[len(cfg.Hosts)-1] // promote a host node to server too
	_ = newServer
	if _, err := a.AddUsers(cfg.Hosts[0], 17); err != nil {
		t.Fatal(err)
	}
	if _, err := a.RemoveUsers(cfg.Hosts[0], 5); err != nil {
		t.Fatal(err)
	}
	if _, err := a.RemoveServer(cfg.Servers[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AddServer(cfg.Servers[1], 500); err != nil {
		t.Fatal(err)
	}
	if _, err := a.RemoveHost(cfg.Hosts[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AddHost(cfg.Hosts[2], 33); err != nil {
		t.Fatal(err)
	}
	_ = ids
	// Invariants: loads match the users matrix, sumNC matches a rescan.
	for si, s := range a.cfg.Servers {
		load := 0
		var sumNC float64
		for hi := range a.cfg.Hosts {
			load += a.users[hi][si]
			sumNC += float64(a.users[hi][si]) * a.comm[hi][si]
		}
		if load != a.loads[si] {
			t.Errorf("server %d: loads=%d, rescan=%d", s, a.loads[si], load)
		}
		if math.Abs(sumNC-a.sumNC[si]) > 1e-9*(1+math.Abs(sumNC)) {
			t.Errorf("server %d: sumNC=%v, rescan=%v", s, a.sumNC[si], sumNC)
		}
	}
	// Index maps point where they claim.
	for i, h := range a.cfg.Hosts {
		if a.hostIdx[h] != i {
			t.Errorf("hostIdx[%d] = %d, want %d", h, a.hostIdx[h], i)
		}
	}
	for j, s := range a.cfg.Servers {
		if a.serverIdx[s] != j {
			t.Errorf("serverIdx[%d] = %d, want %d", s, a.serverIdx[s], j)
		}
		if a.maxLoad[j] != a.cfg.MaxLoad[s] {
			t.Errorf("maxLoad[%d] = %d, want %d", j, a.maxLoad[j], a.cfg.MaxLoad[s])
		}
	}
	// Population conserved.
	total := 0
	for _, h := range a.cfg.Hosts {
		total += a.cfg.Users[h]
	}
	got := 0
	for j := range a.cfg.Servers {
		got += a.loads[j]
	}
	if got != total {
		t.Errorf("assigned %d users, population %d", got, total)
	}
	// And the state is stable.
	if m := a.Balance().Moves; m != 0 {
		t.Errorf("state not stable after reconfig: %d moves", m)
	}
}
