// Package assign implements the paper's server-assignment and load-balancing
// algorithm (§3.1.1).
//
// Users on hosts are assigned to mail (authority) servers so that two
// objectives are satisfied: "to minimize the user connection cost which is a
// function of communication time, processing time, and queuing time" and "to
// balance the expected load level among servers". The connection cost from
// host i to server j is
//
//	TC(i,j) = C(i,j)·W1 + (Q(ρ_j) + z)·W2
//
// where C(i,j) is the zero-load shortest-path communication time, ρ_j =
// L_j/M_j the server's utilisation, Q the M/M/1 waiting estimate
// (internal/queueing), z the mean per-request processing time, and W1/W2 the
// communication/processing weights.
//
// The algorithm has two procedures. Initialization assigns all users on a
// host to the nearest server by communication time alone. Balancing then
// repeatedly moves users one (or, with MoveBatch > 1, several — the paper's
// "much faster" variant) at a time from the assigned server with the highest
// connection cost to the server with the lowest, undoing any move that does
// not lower the combined cost of the two servers involved, until no host can
// improve.
package assign

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/metrics"
	"github.com/largemail/largemail/internal/queueing"
)

// Config describes an assignment problem instance.
type Config struct {
	Topology *graph.Graph
	Hosts    []graph.NodeID       // hosts carrying users, in presentation order
	Servers  []graph.NodeID       // candidate servers, in presentation order
	Users    map[graph.NodeID]int // N_i: users homed on each host
	MaxLoad  map[graph.NodeID]int // M_j: maximum users per server
	ProcTime float64              // z: average processing time per request (time units)
	CommW    float64              // W1: weight of communication time
	ProcW    float64              // W2: weight of processing + queueing time
	// MoveBatch is how many users each balancing step moves at once. Zero
	// or one gives the paper's base algorithm; larger values give the
	// paper's accelerated variant.
	MoveBatch int
	// MaxIterations bounds the balancing sweeps as a safety net. Zero
	// means a generous default proportional to the user population.
	MaxIterations int
	// ChannelUtil optionally reports the utilisation ρ of the channel
	// between two adjacent nodes, enabling the paper's final modification:
	// "include variable communication delays by having approximate queuing
	// delays that is a function of the channel utilization" (§3.1.1). Each
	// link's communication time is scaled by (1 + ρ/(1-ρ)). Nil keeps the
	// paper's base assumption of constant delays ("valid in the case of
	// light loads on the channel").
	ChannelUtil func(a, b graph.NodeID) float64
}

// PaperWeights returns the weight settings of the worked example in §3.1.1:
// W1 = 4 ("to force the algorithm to select the closest servers ... [taking]
// into consideration the round-trip communication delay"), W2 = 1, and a
// message processing time of 0.5 time units.
func PaperWeights() (commW, procW, procTime float64) { return 4, 1, 0.5 }

// Configuration errors.
var (
	ErrNoServers     = errors.New("assign: no servers")
	ErrNoHosts       = errors.New("assign: no hosts")
	ErrUnreachable   = errors.New("assign: host cannot reach any server")
	ErrUnknownNode   = errors.New("assign: node not in topology")
	ErrNegativeUsers = errors.New("assign: negative user count")
)

// Assignment is a mutable user-to-server assignment (the A_ij matrix of
// §3.1.1) with cached zero-load communication costs.
type Assignment struct {
	cfg   Config
	comm  map[graph.NodeID]map[graph.NodeID]float64 // C(i,j), one-way shortest path
	users map[graph.NodeID]map[graph.NodeID]int     // A[host][server]
	loads map[graph.NodeID]int                      // L[server]
}

// New validates cfg, computes the zero-load communication costs, and returns
// an empty assignment (call Initialize next, or Run for the full pipeline).
func New(cfg Config) (*Assignment, error) {
	if len(cfg.Servers) == 0 {
		return nil, ErrNoServers
	}
	if len(cfg.Hosts) == 0 {
		return nil, ErrNoHosts
	}
	if cfg.Topology == nil {
		return nil, errors.New("assign: nil topology")
	}
	if cfg.MoveBatch < 1 {
		cfg.MoveBatch = 1
	}
	// Copy caller-owned slices and maps: reconfiguration mutates them.
	cfg.Hosts = append([]graph.NodeID(nil), cfg.Hosts...)
	cfg.Servers = append([]graph.NodeID(nil), cfg.Servers...)
	users := make(map[graph.NodeID]int, len(cfg.Users))
	for k, v := range cfg.Users {
		users[k] = v
	}
	cfg.Users = users
	maxLoad := make(map[graph.NodeID]int, len(cfg.MaxLoad))
	for k, v := range cfg.MaxLoad {
		maxLoad[k] = v
	}
	cfg.MaxLoad = maxLoad
	total := 0
	for _, h := range cfg.Hosts {
		n := cfg.Users[h]
		if n < 0 {
			return nil, fmt.Errorf("%w: host %d has %d", ErrNegativeUsers, h, n)
		}
		total += n
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 10 * (total + len(cfg.Hosts)*len(cfg.Servers) + 100)
	}
	a := &Assignment{
		cfg:   cfg,
		comm:  make(map[graph.NodeID]map[graph.NodeID]float64, len(cfg.Hosts)),
		users: make(map[graph.NodeID]map[graph.NodeID]int, len(cfg.Hosts)),
		loads: make(map[graph.NodeID]int, len(cfg.Servers)),
	}
	for _, s := range cfg.Servers {
		if _, ok := cfg.Topology.Node(s); !ok {
			return nil, fmt.Errorf("%w: server %d", ErrUnknownNode, s)
		}
		a.loads[s] = 0
	}
	topo := cfg.Topology
	if cfg.ChannelUtil != nil {
		weighted, err := utilizationWeighted(cfg.Topology, cfg.ChannelUtil)
		if err != nil {
			return nil, err
		}
		topo = weighted
	}
	for _, h := range cfg.Hosts {
		if _, ok := cfg.Topology.Node(h); !ok {
			return nil, fmt.Errorf("%w: host %d", ErrUnknownNode, h)
		}
		paths, err := topo.ShortestPaths(h)
		if err != nil {
			return nil, err
		}
		row := make(map[graph.NodeID]float64, len(cfg.Servers))
		reachable := false
		for _, s := range cfg.Servers {
			if d, ok := paths.Dist[s]; ok {
				row[s] = d
				reachable = true
			} else {
				row[s] = math.Inf(1)
			}
		}
		if !reachable && cfg.Users[h] > 0 {
			return nil, fmt.Errorf("%w: host %d", ErrUnreachable, h)
		}
		a.comm[h] = row
		a.users[h] = make(map[graph.NodeID]int, len(cfg.Servers))
	}
	return a, nil
}

// utilizationWeighted returns a copy of g whose edge weights are scaled by
// the M/M/1 queueing factor (1 + ρ/(1-ρ)) of each channel's utilisation.
func utilizationWeighted(g *graph.Graph, util func(a, b graph.NodeID) float64) (*graph.Graph, error) {
	out := graph.New()
	for _, n := range g.Nodes() {
		out.MustAddNode(n)
	}
	for _, e := range g.Edges() {
		rho := util(e.A, e.B)
		factor := 1 + queueing.Wait(rho)
		if err := out.AddEdge(e.A, e.B, e.Weight*factor); err != nil {
			return nil, fmt.Errorf("assign: channel-weighted edge %d-%d: %w", e.A, e.B, err)
		}
	}
	return out, nil
}

// Comm returns the cached zero-load communication cost C(i,j).
func (a *Assignment) Comm(host, server graph.NodeID) float64 { return a.comm[host][server] }

// Load returns the current load L_j of a server.
func (a *Assignment) Load(server graph.NodeID) int { return a.loads[server] }

// Assigned returns A[host][server], the users of host assigned to server.
func (a *Assignment) Assigned(host, server graph.NodeID) int { return a.users[host][server] }

// Utilization returns ρ_j = L_j/M_j for a server.
func (a *Assignment) Utilization(server graph.NodeID) float64 {
	return queueing.Utilization(a.loads[server], a.cfg.MaxLoad[server])
}

// ConnectionCost returns TC(i,j) under the current loads.
func (a *Assignment) ConnectionCost(host, server graph.NodeID) float64 {
	c := a.comm[host][server]
	if math.IsInf(c, 1) {
		return math.Inf(1)
	}
	wait := queueing.Wait(a.Utilization(server))
	return c*a.cfg.CommW + (wait+a.cfg.ProcTime)*a.cfg.ProcW
}

// Initialize runs the paper's initialization procedure: "all users on a host
// are assigned to the nearest server", nearest by communication time alone.
// Ties break toward the earlier server in cfg.Servers. Any previous
// assignment is discarded.
func (a *Assignment) Initialize() {
	for _, s := range a.cfg.Servers {
		a.loads[s] = 0
	}
	for _, h := range a.cfg.Hosts {
		a.users[h] = make(map[graph.NodeID]int, len(a.cfg.Servers))
		n := a.cfg.Users[h]
		if n == 0 {
			continue
		}
		best := a.nearestServer(h)
		a.users[h][best] = n
		a.loads[best] += n
	}
}

func (a *Assignment) nearestServer(h graph.NodeID) graph.NodeID {
	best := a.cfg.Servers[0]
	bestC := a.comm[h][best]
	for _, s := range a.cfg.Servers[1:] {
		if c := a.comm[h][s]; c < bestC {
			best, bestC = s, c
		}
	}
	return best
}

// BalanceStats reports what a Balance run did.
type BalanceStats struct {
	Sweeps     int            // full passes over the host list
	Moves      int            // accepted user moves (batches count once)
	UsersMoved int            // individual users moved
	Undone     int            // tentative moves that were undone
	Overloaded []graph.NodeID // servers still above MaxLoad afterwards
}

// Balance runs the paper's balancing procedure until no host can lower its
// cost by moving users, then reports whether any servers remain overloaded
// (the procedure's final "check if some of the servers are still
// overloaded").
func (a *Assignment) Balance() BalanceStats {
	var stats BalanceStats
	const eps = 1e-9
	for stats.Sweeps < a.cfg.MaxIterations {
		stats.Sweeps++
		changed := false
		for _, h := range a.cfg.Hosts {
			for { // keep improving this host while moves help
				sMin, sMax, ok := a.minMaxServers(h)
				if !ok || sMin == sMax {
					break
				}
				if !(a.ConnectionCost(h, sMin) < a.ConnectionCost(h, sMax)-eps) {
					break
				}
				batch := a.cfg.MoveBatch
				if avail := a.users[h][sMax]; batch > avail {
					batch = avail
				}
				before := a.serverCost(sMin) + a.serverCost(sMax)
				a.move(h, sMax, sMin, batch)
				after := a.serverCost(sMin) + a.serverCost(sMax)
				if after < before-eps {
					changed = true
					stats.Moves++
					stats.UsersMoved += batch
				} else {
					a.move(h, sMin, sMax, batch) // undo
					stats.Undone++
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	for _, s := range a.cfg.Servers {
		if a.loads[s] > a.cfg.MaxLoad[s] {
			stats.Overloaded = append(stats.Overloaded, s)
		}
	}
	return stats
}

// minMaxServers finds S_min (cheapest server for host h) and S_max (the
// costliest server h currently has users on). ok is false when the host has
// no users assigned anywhere.
func (a *Assignment) minMaxServers(h graph.NodeID) (sMin, sMax graph.NodeID, ok bool) {
	minCost := math.Inf(1)
	maxCost := math.Inf(-1)
	for _, s := range a.cfg.Servers {
		c := a.ConnectionCost(h, s)
		if c < minCost {
			minCost, sMin = c, s
		}
		if a.users[h][s] > 0 && c > maxCost {
			maxCost, sMax = c, s
			ok = true
		}
	}
	return sMin, sMax, ok
}

// serverCost is the total connection cost charged to a server under the
// current loads: Σ_i A[i][s] · TC(i,s).
func (a *Assignment) serverCost(s graph.NodeID) float64 {
	var total float64
	for _, h := range a.cfg.Hosts {
		if n := a.users[h][s]; n > 0 {
			total += float64(n) * a.ConnectionCost(h, s)
		}
	}
	return total
}

func (a *Assignment) move(h, from, to graph.NodeID, n int) {
	if n <= 0 {
		return
	}
	a.users[h][from] -= n
	if a.users[h][from] == 0 {
		delete(a.users[h], from)
	}
	a.users[h][to] += n
	a.loads[from] -= n
	a.loads[to] += n
}

// Run executes the full pipeline: Initialize then Balance.
func (a *Assignment) Run() BalanceStats {
	a.Initialize()
	return a.Balance()
}

// TotalCost is the system-wide connection cost Σ_i Σ_j A[i][j]·TC(i,j)
// under the current loads.
func (a *Assignment) TotalCost() float64 {
	var total float64
	for _, s := range a.cfg.Servers {
		total += a.serverCost(s)
	}
	return total
}

// MaxUtilization returns the highest server utilisation.
func (a *Assignment) MaxUtilization() float64 {
	max := 0.0
	for _, s := range a.cfg.Servers {
		if u := a.Utilization(s); u > max {
			max = u
		}
	}
	return max
}

// LoadImbalance returns max_j ρ_j − min_j ρ_j.
func (a *Assignment) LoadImbalance() float64 {
	min, max := math.Inf(1), math.Inf(-1)
	for _, s := range a.cfg.Servers {
		u := a.Utilization(s)
		if u < min {
			min = u
		}
		if u > max {
			max = u
		}
	}
	return max - min
}

// Row is one line of the paper's assignment tables: users of a host assigned
// to a server.
type Row struct {
	Host   graph.NodeID
	Server graph.NodeID
	Users  int
}

// Rows returns the assignment in the paper's table layout, ordered by host
// (cfg order) then server (cfg order), omitting zero entries.
func (a *Assignment) Rows() []Row {
	var rows []Row
	for _, h := range a.cfg.Hosts {
		for _, s := range a.cfg.Servers {
			if n := a.users[h][s]; n > 0 {
				rows = append(rows, Row{Host: h, Server: s, Users: n})
			}
		}
	}
	return rows
}

// Table renders the current assignment in the layout of the paper's Tables
// 1–3 (host, server, users) followed by per-server load totals.
func (a *Assignment) Table(title string) *metrics.Table {
	t := metrics.NewTable(title, "Host", "Server", "Users")
	label := func(id graph.NodeID) string {
		if n, ok := a.cfg.Topology.Node(id); ok && n.Label != "" {
			return n.Label
		}
		return fmt.Sprintf("%d", id)
	}
	for _, r := range a.Rows() {
		t.AddRow(label(r.Host), label(r.Server), r.Users)
	}
	for _, s := range a.cfg.Servers {
		t.AddRow("total", label(s), a.loads[s])
	}
	return t
}

// Loads returns a copy of the per-server load map.
func (a *Assignment) Loads() map[graph.NodeID]int {
	out := make(map[graph.NodeID]int, len(a.loads))
	for k, v := range a.loads {
		out[k] = v
	}
	return out
}

// AuthorityLists ranks, for each host, the servers by current connection
// cost and returns the first listLen of them. This realizes the paper's
// extension — "the algorithm can be extended to assign the [secondary]
// server instead of only the primary server" — and §3.1.1's requirement that
// "each user is assigned several authority servers, which are ordered in a
// list such that the first server in the list is the primary server".
func (a *Assignment) AuthorityLists(listLen int) map[graph.NodeID][]graph.NodeID {
	if listLen <= 0 || listLen > len(a.cfg.Servers) {
		listLen = len(a.cfg.Servers)
	}
	out := make(map[graph.NodeID][]graph.NodeID, len(a.cfg.Hosts))
	for _, h := range a.cfg.Hosts {
		ranked := append([]graph.NodeID(nil), a.cfg.Servers...)
		h := h
		sort.SliceStable(ranked, func(x, y int) bool {
			cx, cy := a.ConnectionCost(h, ranked[x]), a.ConnectionCost(h, ranked[y])
			if cx != cy {
				return cx < cy
			}
			return ranked[x] < ranked[y]
		})
		// Primary server preference: if the host has users assigned, put
		// the server holding most of them first among equal-cost choices.
		out[h] = ranked[:listLen]
	}
	return out
}
