// Package assign implements the paper's server-assignment and load-balancing
// algorithm (§3.1.1).
//
// Users on hosts are assigned to mail (authority) servers so that two
// objectives are satisfied: "to minimize the user connection cost which is a
// function of communication time, processing time, and queuing time" and "to
// balance the expected load level among servers". The connection cost from
// host i to server j is
//
//	TC(i,j) = C(i,j)·W1 + (Q(ρ_j) + z)·W2
//
// where C(i,j) is the zero-load shortest-path communication time, ρ_j =
// L_j/M_j the server's utilisation, Q the M/M/1 waiting estimate
// (internal/queueing), z the mean per-request processing time, and W1/W2 the
// communication/processing weights.
//
// The algorithm has two procedures. Initialization assigns all users on a
// host to the nearest server by communication time alone. Balancing then
// repeatedly moves users one (or, with MoveBatch > 1, several — the paper's
// "much faster" variant) at a time from the assigned server with the highest
// connection cost to the server with the lowest, undoing any move that does
// not lower the combined cost of the two servers involved, until no host can
// improve.
//
// # Scaling
//
// The engine stores the assignment state densely: hosts and servers get
// contiguous indices, C(i,j) and A[i][j] live in [host][server] slices, and
// each server carries two running sums — its load L_s and Σ_i A[i][s]·C(i,s).
// A server's total cost is then the closed form
//
//	cost(s) = W1·ΣnC(s) + L_s·W2·(Q(ρ_s) + z)
//
// evaluated in O(1), so every tentative move/undo in Balance costs O(S) per
// host (the min/max scan) instead of O(H+S). The zero-load communication
// costs are computed by per-host Dijkstra runs fanned out across GOMAXPROCS
// workers on the topology's frozen view (graph.Frozen). The retained
// map-based implementation (reference.go) pins down exact equivalence.
package assign

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/obs"
	"github.com/largemail/largemail/internal/queueing"
)

// Config describes an assignment problem instance.
type Config struct {
	Topology *graph.Graph
	Hosts    []graph.NodeID       // hosts carrying users, in presentation order
	Servers  []graph.NodeID       // candidate servers, in presentation order
	Users    map[graph.NodeID]int // N_i: users homed on each host
	MaxLoad  map[graph.NodeID]int // M_j: maximum users per server
	ProcTime float64              // z: average processing time per request (time units)
	CommW    float64              // W1: weight of communication time
	ProcW    float64              // W2: weight of processing + queueing time
	// MoveBatch is how many users each balancing step moves at once. Zero
	// or one gives the paper's base algorithm; larger values give the
	// paper's accelerated variant.
	MoveBatch int
	// MaxIterations bounds the balancing sweeps as a safety net. Zero
	// means a generous default proportional to the user population.
	MaxIterations int
	// ChannelUtil optionally reports the utilisation ρ of the channel
	// between two adjacent nodes, enabling the paper's final modification:
	// "include variable communication delays by having approximate queuing
	// delays that is a function of the channel utilization" (§3.1.1). Each
	// link's communication time is scaled by (1 + ρ/(1-ρ)). Nil keeps the
	// paper's base assumption of constant delays ("valid in the case of
	// light loads on the channel").
	ChannelUtil func(a, b graph.NodeID) float64
}

// PaperWeights returns the weight settings of the worked example in §3.1.1:
// W1 = 4 ("to force the algorithm to select the closest servers ... [taking]
// into consideration the round-trip communication delay"), W2 = 1, and a
// message processing time of 0.5 time units.
func PaperWeights() (commW, procW, procTime float64) { return 4, 1, 0.5 }

// Configuration errors.
var (
	ErrNoServers     = errors.New("assign: no servers")
	ErrNoHosts       = errors.New("assign: no hosts")
	ErrUnreachable   = errors.New("assign: host cannot reach any server")
	ErrUnknownNode   = errors.New("assign: node not in topology")
	ErrNegativeUsers = errors.New("assign: negative user count")
)

// normalizeConfig validates the parts of cfg that don't require path
// computation and returns a defensive copy (shared by the optimized engine
// and the reference implementation).
func normalizeConfig(cfg Config) (Config, error) {
	if len(cfg.Servers) == 0 {
		return Config{}, ErrNoServers
	}
	if len(cfg.Hosts) == 0 {
		return Config{}, ErrNoHosts
	}
	if cfg.Topology == nil {
		return Config{}, errors.New("assign: nil topology")
	}
	if cfg.MoveBatch < 1 {
		cfg.MoveBatch = 1
	}
	// Copy caller-owned slices and maps: reconfiguration mutates them.
	cfg.Hosts = append([]graph.NodeID(nil), cfg.Hosts...)
	cfg.Servers = append([]graph.NodeID(nil), cfg.Servers...)
	users := make(map[graph.NodeID]int, len(cfg.Users))
	for k, v := range cfg.Users {
		users[k] = v
	}
	cfg.Users = users
	maxLoad := make(map[graph.NodeID]int, len(cfg.MaxLoad))
	for k, v := range cfg.MaxLoad {
		maxLoad[k] = v
	}
	cfg.MaxLoad = maxLoad
	total := 0
	for _, h := range cfg.Hosts {
		n := cfg.Users[h]
		if n < 0 {
			return Config{}, fmt.Errorf("%w: host %d has %d", ErrNegativeUsers, h, n)
		}
		total += n
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 10 * (total + len(cfg.Hosts)*len(cfg.Servers) + 100)
	}
	for _, s := range cfg.Servers {
		if _, ok := cfg.Topology.Node(s); !ok {
			return Config{}, fmt.Errorf("%w: server %d", ErrUnknownNode, s)
		}
	}
	for _, h := range cfg.Hosts {
		if _, ok := cfg.Topology.Node(h); !ok {
			return Config{}, fmt.Errorf("%w: host %d", ErrUnknownNode, h)
		}
	}
	return cfg, nil
}

// Assignment is a mutable user-to-server assignment (the A_ij matrix of
// §3.1.1). State is dense: comm and users are [hostIdx][serverIdx] slices,
// loads/maxLoad/sumNC are per-server slices, and hostIdx/serverIdx map node
// IDs to their positions in cfg.Hosts/cfg.Servers.
type Assignment struct {
	cfg Config

	hostIdx   map[graph.NodeID]int
	serverIdx map[graph.NodeID]int
	comm      [][]float64 // C(i,j), one-way shortest path
	users     [][]int     // A[host][server]
	loads     []int       // L[server]
	maxLoad   []int       // M[server], mirrors cfg.MaxLoad
	sumNC     []float64   // Σ_i A[i][s]·C(i,s), maintained incrementally
}

// New validates cfg, computes the zero-load communication costs (per-host
// Dijkstra fan-out across GOMAXPROCS workers), and returns an empty
// assignment (call Initialize next, or Run for the full pipeline).
func New(cfg Config) (*Assignment, error) {
	cfg, err := normalizeConfig(cfg)
	if err != nil {
		return nil, err
	}
	a := &Assignment{
		cfg:       cfg,
		hostIdx:   make(map[graph.NodeID]int, len(cfg.Hosts)),
		serverIdx: make(map[graph.NodeID]int, len(cfg.Servers)),
		comm:      make([][]float64, len(cfg.Hosts)),
		users:     make([][]int, len(cfg.Hosts)),
		loads:     make([]int, len(cfg.Servers)),
		maxLoad:   make([]int, len(cfg.Servers)),
		sumNC:     make([]float64, len(cfg.Servers)),
	}
	for i, h := range cfg.Hosts {
		a.hostIdx[h] = i
		a.users[i] = make([]int, len(cfg.Servers))
	}
	for j, s := range cfg.Servers {
		a.serverIdx[s] = j
		a.maxLoad[j] = cfg.MaxLoad[s]
	}
	topo := cfg.Topology
	if cfg.ChannelUtil != nil {
		weighted, err := utilizationWeighted(cfg.Topology, cfg.ChannelUtil)
		if err != nil {
			return nil, err
		}
		topo = weighted
	}
	if err := a.fillComm(topo); err != nil {
		return nil, err
	}
	return a, nil
}

// fillComm computes every host's zero-load communication cost row on topo's
// frozen view, one Dijkstra per host, fanned out across GOMAXPROCS workers.
func (a *Assignment) fillComm(topo *graph.Graph) error {
	f := topo.Frozen()
	srvFz := make([]int, len(a.cfg.Servers))
	for j, s := range a.cfg.Servers {
		fi, ok := f.IndexOf(s)
		if !ok {
			return fmt.Errorf("%w: server %d", ErrUnknownNode, s)
		}
		srvFz[j] = fi
	}
	hostFz := make([]int, len(a.cfg.Hosts))
	for i, h := range a.cfg.Hosts {
		fi, ok := f.IndexOf(h)
		if !ok {
			return fmt.Errorf("%w: host %d", ErrUnknownNode, h)
		}
		hostFz[i] = fi
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(a.cfg.Hosts) {
		workers = len(a.cfg.Hosts)
	}
	if workers < 1 {
		workers = 1
	}
	var next int32 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			dist := make([]float64, f.Len())
			prev := make([]int32, f.Len())
			for {
				i := int(atomic.AddInt32(&next, 1))
				if i >= len(a.cfg.Hosts) {
					return
				}
				f.ShortestFrom(hostFz[i], dist, prev)
				row := make([]float64, len(srvFz))
				for j, fz := range srvFz {
					row[j] = dist[fz] // +Inf when unreachable
				}
				a.comm[i] = row
			}
		}()
	}
	wg.Wait()
	for i, h := range a.cfg.Hosts {
		if a.cfg.Users[h] == 0 {
			continue
		}
		reachable := false
		for _, c := range a.comm[i] {
			if !math.IsInf(c, 1) {
				reachable = true
				break
			}
		}
		if !reachable {
			return fmt.Errorf("%w: host %d", ErrUnreachable, h)
		}
	}
	return nil
}

// utilizationWeighted returns a copy of g whose edge weights are scaled by
// the M/M/1 queueing factor (1 + ρ/(1-ρ)) of each channel's utilisation.
func utilizationWeighted(g *graph.Graph, util func(a, b graph.NodeID) float64) (*graph.Graph, error) {
	out := graph.New()
	for _, n := range g.Nodes() {
		out.MustAddNode(n)
	}
	for _, e := range g.Edges() {
		rho := util(e.A, e.B)
		factor := 1 + queueing.Wait(rho)
		if err := out.AddEdge(e.A, e.B, e.Weight*factor); err != nil {
			return nil, fmt.Errorf("assign: channel-weighted edge %d-%d: %w", e.A, e.B, err)
		}
	}
	return out, nil
}

// Comm returns the cached zero-load communication cost C(i,j).
func (a *Assignment) Comm(host, server graph.NodeID) float64 {
	hi, ok1 := a.hostIdx[host]
	si, ok2 := a.serverIdx[server]
	if !ok1 || !ok2 {
		return 0
	}
	return a.comm[hi][si]
}

// Load returns the current load L_j of a server.
func (a *Assignment) Load(server graph.NodeID) int {
	if si, ok := a.serverIdx[server]; ok {
		return a.loads[si]
	}
	return 0
}

// Assigned returns A[host][server], the users of host assigned to server.
func (a *Assignment) Assigned(host, server graph.NodeID) int {
	hi, ok1 := a.hostIdx[host]
	si, ok2 := a.serverIdx[server]
	if !ok1 || !ok2 {
		return 0
	}
	return a.users[hi][si]
}

// Utilization returns ρ_j = L_j/M_j for a server.
func (a *Assignment) Utilization(server graph.NodeID) float64 {
	if si, ok := a.serverIdx[server]; ok {
		return queueing.Utilization(a.loads[si], a.maxLoad[si])
	}
	return queueing.Utilization(0, a.cfg.MaxLoad[server])
}

// ConnectionCost returns TC(i,j) under the current loads.
func (a *Assignment) ConnectionCost(host, server graph.NodeID) float64 {
	c := a.Comm(host, server)
	if math.IsInf(c, 1) {
		return math.Inf(1)
	}
	wait := queueing.Wait(a.Utilization(server))
	return c*a.cfg.CommW + (wait+a.cfg.ProcTime)*a.cfg.ProcW
}

// connCostAt is ConnectionCost on dense indices — the Balance hot path.
func (a *Assignment) connCostAt(hi, si int) float64 {
	c := a.comm[hi][si]
	if math.IsInf(c, 1) {
		return math.Inf(1)
	}
	wait := queueing.Wait(queueing.Utilization(a.loads[si], a.maxLoad[si]))
	return c*a.cfg.CommW + (wait+a.cfg.ProcTime)*a.cfg.ProcW
}

// Initialize runs the paper's initialization procedure: "all users on a host
// are assigned to the nearest server", nearest by communication time alone.
// Ties break toward the earlier server in cfg.Servers. Any previous
// assignment is discarded.
func (a *Assignment) Initialize() {
	for j := range a.loads {
		a.loads[j] = 0
		a.sumNC[j] = 0
	}
	for hi := range a.users {
		row := a.users[hi]
		for j := range row {
			row[j] = 0
		}
		n := a.cfg.Users[a.cfg.Hosts[hi]]
		if n == 0 {
			continue
		}
		best := a.nearestServerIdx(hi)
		row[best] = n
		a.loads[best] += n
		a.sumNC[best] += float64(n) * a.comm[hi][best]
	}
}

// nearestServerIdx returns the dense index of the server with the cheapest
// zero-load communication cost from host hi; ties break toward the earlier
// server in cfg.Servers.
func (a *Assignment) nearestServerIdx(hi int) int {
	row := a.comm[hi]
	best := 0
	bestC := row[0]
	for j := 1; j < len(row); j++ {
		if row[j] < bestC {
			best, bestC = j, row[j]
		}
	}
	return best
}

// BalanceStats reports what a Balance run did.
type BalanceStats struct {
	Sweeps     int            // full passes over the host list
	Moves      int            // accepted user moves (batches count once)
	UsersMoved int            // individual users moved
	Undone     int            // tentative moves that were undone
	Overloaded []graph.NodeID // servers still above MaxLoad afterwards
}

// Balance runs the paper's balancing procedure until no host can lower its
// cost by moving users, then reports whether any servers remain overloaded
// (the procedure's final "check if some of the servers are still
// overloaded"). Each accept/undo decision evaluates the two affected
// servers' closed-form costs in O(1).
func (a *Assignment) Balance() BalanceStats {
	var stats BalanceStats
	const eps = 1e-9
	for stats.Sweeps < a.cfg.MaxIterations {
		stats.Sweeps++
		changed := false
		for hi := range a.cfg.Hosts {
			for { // keep improving this host while moves help
				sMin, sMax, ok := a.minMaxAt(hi)
				if !ok || sMin == sMax {
					break
				}
				if !(a.connCostAt(hi, sMin) < a.connCostAt(hi, sMax)-eps) {
					break
				}
				batch := a.cfg.MoveBatch
				if avail := a.users[hi][sMax]; batch > avail {
					batch = avail
				}
				before := a.serverCostAt(sMin) + a.serverCostAt(sMax)
				a.moveAt(hi, sMax, sMin, batch)
				after := a.serverCostAt(sMin) + a.serverCostAt(sMax)
				if after < before-eps {
					changed = true
					stats.Moves++
					stats.UsersMoved += batch
				} else {
					a.moveAt(hi, sMin, sMax, batch) // undo
					stats.Undone++
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	for j, s := range a.cfg.Servers {
		if a.loads[j] > a.maxLoad[j] {
			stats.Overloaded = append(stats.Overloaded, s)
		}
	}
	return stats
}

// minMaxAt finds S_min (cheapest server for host hi) and S_max (the
// costliest server hi currently has users on). ok is false when the host
// has no users assigned anywhere.
func (a *Assignment) minMaxAt(hi int) (sMin, sMax int, ok bool) {
	minCost := math.Inf(1)
	maxCost := math.Inf(-1)
	row := a.users[hi]
	for j := range a.cfg.Servers {
		c := a.connCostAt(hi, j)
		if c < minCost {
			minCost, sMin = c, j
		}
		if row[j] > 0 && c > maxCost {
			maxCost, sMax = c, j
			ok = true
		}
	}
	return sMin, sMax, ok
}

// serverCostAt is the total connection cost charged to a server under the
// current loads, Σ_i A[i][s]·TC(i,s), evaluated in O(1) from the running
// sums: W1·ΣnC(s) + L_s·W2·(Q(ρ_s)+z). The reference implementation must
// use this exact expression so accept/undo decisions agree bit-for-bit.
func (a *Assignment) serverCostAt(si int) float64 {
	wait := queueing.Wait(queueing.Utilization(a.loads[si], a.maxLoad[si]))
	return a.cfg.CommW*a.sumNC[si] + float64(a.loads[si])*a.cfg.ProcW*(wait+a.cfg.ProcTime)
}

// moveAt moves n users of host hi between servers, maintaining the running
// sums in O(1).
func (a *Assignment) moveAt(hi, from, to, n int) {
	if n <= 0 {
		return
	}
	a.users[hi][from] -= n
	a.users[hi][to] += n
	a.loads[from] -= n
	a.loads[to] += n
	a.sumNC[from] -= float64(n) * a.comm[hi][from]
	a.sumNC[to] += float64(n) * a.comm[hi][to]
}

// Run executes the full pipeline: Initialize then Balance.
func (a *Assignment) Run() BalanceStats {
	a.Initialize()
	return a.Balance()
}

// TotalCost is the system-wide connection cost Σ_i Σ_j A[i][j]·TC(i,j)
// under the current loads.
func (a *Assignment) TotalCost() float64 {
	var total float64
	for j := range a.cfg.Servers {
		total += a.serverCostAt(j)
	}
	return total
}

// MaxUtilization returns the highest server utilisation.
func (a *Assignment) MaxUtilization() float64 {
	max := 0.0
	for j := range a.cfg.Servers {
		if u := queueing.Utilization(a.loads[j], a.maxLoad[j]); u > max {
			max = u
		}
	}
	return max
}

// LoadImbalance returns max_j ρ_j − min_j ρ_j.
func (a *Assignment) LoadImbalance() float64 {
	min, max := math.Inf(1), math.Inf(-1)
	for j := range a.cfg.Servers {
		u := queueing.Utilization(a.loads[j], a.maxLoad[j])
		if u < min {
			min = u
		}
		if u > max {
			max = u
		}
	}
	return max - min
}

// Row is one line of the paper's assignment tables: users of a host assigned
// to a server.
type Row struct {
	Host   graph.NodeID
	Server graph.NodeID
	Users  int
}

// Rows returns the assignment in the paper's table layout, ordered by host
// (cfg order) then server (cfg order), omitting zero entries.
func (a *Assignment) Rows() []Row {
	var rows []Row
	for hi, h := range a.cfg.Hosts {
		for si, s := range a.cfg.Servers {
			if n := a.users[hi][si]; n > 0 {
				rows = append(rows, Row{Host: h, Server: s, Users: n})
			}
		}
	}
	return rows
}

// Table renders the current assignment in the layout of the paper's Tables
// 1–3 (host, server, users) followed by per-server load totals.
func (a *Assignment) Table(title string) *obs.Table {
	t := obs.NewTable(title, "Host", "Server", "Users")
	label := func(id graph.NodeID) string {
		if n, ok := a.cfg.Topology.Node(id); ok && n.Label != "" {
			return n.Label
		}
		return fmt.Sprintf("%d", id)
	}
	for _, r := range a.Rows() {
		t.AddRow(label(r.Host), label(r.Server), r.Users)
	}
	for j, s := range a.cfg.Servers {
		t.AddRow("total", label(s), a.loads[j])
	}
	return t
}

// Loads returns a copy of the per-server load map.
func (a *Assignment) Loads() map[graph.NodeID]int {
	out := make(map[graph.NodeID]int, len(a.cfg.Servers))
	for j, s := range a.cfg.Servers {
		out[s] = a.loads[j]
	}
	return out
}

// AuthorityLists ranks, for each host, the servers by current connection
// cost and returns the first listLen of them. This realizes the paper's
// extension — "the algorithm can be extended to assign the [secondary]
// server instead of only the primary server" — and §3.1.1's requirement that
// "each user is assigned several authority servers, which are ordered in a
// list such that the first server in the list is the primary server".
func (a *Assignment) AuthorityLists(listLen int) map[graph.NodeID][]graph.NodeID {
	if listLen <= 0 || listLen > len(a.cfg.Servers) {
		listLen = len(a.cfg.Servers)
	}
	out := make(map[graph.NodeID][]graph.NodeID, len(a.cfg.Hosts))
	for _, h := range a.cfg.Hosts {
		ranked := append([]graph.NodeID(nil), a.cfg.Servers...)
		h := h
		sort.SliceStable(ranked, func(x, y int) bool {
			cx, cy := a.ConnectionCost(h, ranked[x]), a.ConnectionCost(h, ranked[y])
			if cx != cy {
				return cx < cy
			}
			return ranked[x] < ranked[y]
		})
		// Primary server preference: if the host has users assigned, put
		// the server holding most of them first among equal-cost choices.
		out[h] = ranked[:listLen]
	}
	return out
}
