package assign

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/queueing"
)

// figure1Config builds the paper's §3.1.1 worked example: Figure 1 topology,
// W1=4, W2=1, z=0.5, M_j=100.
func figure1Config() (Config, graph.Example) {
	ex := graph.Figure1()
	commW, procW, procTime := PaperWeights()
	maxLoad := make(map[graph.NodeID]int)
	for _, s := range ex.Servers {
		maxLoad[s] = 100
	}
	return Config{
		Topology: ex.G,
		Hosts:    ex.Hosts,
		Servers:  ex.Servers,
		Users:    ex.Users,
		MaxLoad:  maxLoad,
		ProcTime: procTime,
		CommW:    commW,
		ProcW:    procW,
	}, ex
}

func table3Config() (Config, graph.Example) {
	ex := graph.Table3Variant()
	commW, procW, procTime := PaperWeights()
	maxLoad := make(map[graph.NodeID]int)
	for _, s := range ex.Servers {
		maxLoad[s] = 100
	}
	return Config{
		Topology: ex.G,
		Hosts:    ex.Hosts,
		Servers:  ex.Servers,
		Users:    ex.Users,
		MaxLoad:  maxLoad,
		ProcTime: procTime,
		CommW:    commW,
		ProcW:    procW,
	}, ex
}

func totalAssigned(a *Assignment, servers []graph.NodeID) int {
	total := 0
	for _, s := range servers {
		total += a.Load(s)
	}
	return total
}

func TestValidation(t *testing.T) {
	cfg, _ := figure1Config()
	good := cfg

	cfg = good
	cfg.Servers = nil
	if _, err := New(cfg); !errors.Is(err, ErrNoServers) {
		t.Errorf("no servers: err = %v", err)
	}

	cfg = good
	cfg.Hosts = nil
	if _, err := New(cfg); !errors.Is(err, ErrNoHosts) {
		t.Errorf("no hosts: err = %v", err)
	}

	cfg = good
	cfg.Topology = nil
	if _, err := New(cfg); err == nil {
		t.Error("nil topology accepted")
	}

	cfg = good
	cfg.Hosts = append([]graph.NodeID{999}, good.Hosts...)
	if _, err := New(cfg); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown host: err = %v", err)
	}

	cfg = good
	cfg.Servers = append([]graph.NodeID{999}, good.Servers...)
	if _, err := New(cfg); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown server: err = %v", err)
	}

	cfg = good
	cfg.Users = map[graph.NodeID]int{good.Hosts[0]: -1}
	if _, err := New(cfg); !errors.Is(err, ErrNegativeUsers) {
		t.Errorf("negative users: err = %v", err)
	}
}

func TestUnreachableHost(t *testing.T) {
	g := graph.New()
	g.MustAddNode(graph.Node{ID: 1, Kind: graph.KindHost})
	g.MustAddNode(graph.Node{ID: 2, Kind: graph.KindServer})
	// no edge: host 1 cannot reach server 2
	cfg := Config{
		Topology: g,
		Hosts:    []graph.NodeID{1},
		Servers:  []graph.NodeID{2},
		Users:    map[graph.NodeID]int{1: 5},
		MaxLoad:  map[graph.NodeID]int{2: 10},
		CommW:    1, ProcW: 1,
	}
	if _, err := New(cfg); !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
}

// Table 1: the initialization step must reproduce the paper's nearest-server
// assignment exactly: H1,H3→S1 (load 100), H2,H4,H5→S2 (load 150), H6→S3
// (load 20).
func TestTable1Initialization(t *testing.T) {
	cfg, ex := figure1Config()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Initialize()
	wantServer := []int{0, 1, 0, 1, 1, 2}
	for hi, h := range ex.Hosts {
		s := ex.Servers[wantServer[hi]]
		if got := a.Assigned(h, s); got != ex.Users[h] {
			t.Errorf("H%d: assigned %d users to S%d, want %d", hi+1, got, wantServer[hi]+1, ex.Users[h])
		}
	}
	wantLoads := map[int]int{0: 100, 1: 150, 2: 20}
	for si, want := range wantLoads {
		if got := a.Load(ex.Servers[si]); got != want {
			t.Errorf("S%d load = %d, want %d", si+1, got, want)
		}
	}
	if totalAssigned(a, ex.Servers) != 270 {
		t.Error("initialization lost users")
	}
}

// Table 2: after balancing, no server may stay saturated, every user stays
// assigned, and the state is stable (a second Balance makes no moves).
func TestTable2Balancing(t *testing.T) {
	cfg, ex := figure1Config()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Initialize()
	costBefore := a.TotalCost()
	stats := a.Balance()
	if stats.Moves == 0 {
		t.Fatal("balancing the overloaded Table 1 state made no moves")
	}
	if len(stats.Overloaded) != 0 {
		t.Errorf("servers still overloaded: %v", stats.Overloaded)
	}
	if got := totalAssigned(a, ex.Servers); got != 270 {
		t.Errorf("total assigned = %d, want 270", got)
	}
	if u := a.MaxUtilization(); u >= queueing.UtilizationCutoff {
		t.Errorf("max utilisation %v still at/above saturation cutoff", u)
	}
	if after := a.TotalCost(); after >= costBefore {
		t.Errorf("total cost did not improve: %v → %v", costBefore, after)
	}
	// Paper prose: "users on one host may be assigned to different servers".
	split := false
	byHost := make(map[graph.NodeID]int)
	for _, r := range a.Rows() {
		byHost[r.Host]++
		if byHost[r.Host] > 1 {
			split = true
		}
	}
	if !split {
		t.Error("no host split across servers; the paper's example splits hosts")
	}
	// Stability: rebalancing a balanced state is a no-op.
	again := a.Balance()
	if again.Moves != 0 {
		t.Errorf("second Balance made %d moves, want 0", again.Moves)
	}
}

// Table 3: the skewed variant (100/100/20) saturates S1 and S2 at
// initialization; balancing must shed load onto S3.
func TestTable3Skewed(t *testing.T) {
	cfg, ex := table3Config()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Initialize()
	for si, want := range []int{100, 100, 20} {
		if got := a.Load(ex.Servers[si]); got != want {
			t.Errorf("initial S%d load = %d, want %d", si+1, got, want)
		}
	}
	stats := a.Balance()
	if len(stats.Overloaded) != 0 {
		t.Errorf("still overloaded: %v", stats.Overloaded)
	}
	if a.MaxUtilization() >= queueing.UtilizationCutoff {
		t.Errorf("max utilisation %v at/above cutoff after balancing", a.MaxUtilization())
	}
	if a.Load(ex.Servers[2]) <= 20 {
		t.Errorf("S3 load = %d; balancing should have shed load onto S3", a.Load(ex.Servers[2]))
	}
	if totalAssigned(a, ex.Servers) != 220 {
		t.Error("users lost during balancing")
	}
}

func TestRunPipeline(t *testing.T) {
	cfg, _ := figure1Config()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := a.Run()
	if stats.Moves == 0 || len(stats.Overloaded) != 0 {
		t.Errorf("Run stats = %+v", stats)
	}
}

// The accelerated variant ("the algorithm can be made much faster if in each
// iteration more than one user is moved") must reach a comparable state with
// fewer accepted moves.
func TestMoveBatchFaster(t *testing.T) {
	cfgBase, _ := figure1Config()
	base, err := New(cfgBase)
	if err != nil {
		t.Fatal(err)
	}
	sBase := base.Run()

	cfgBatch, _ := figure1Config()
	cfgBatch.MoveBatch = 10
	batch, err := New(cfgBatch)
	if err != nil {
		t.Fatal(err)
	}
	sBatch := batch.Run()

	if sBatch.Moves >= sBase.Moves {
		t.Errorf("batch moves %d not fewer than single moves %d", sBatch.Moves, sBase.Moves)
	}
	if len(sBatch.Overloaded) != 0 {
		t.Errorf("batch variant left overload: %v", sBatch.Overloaded)
	}
	if batch.MaxUtilization() >= queueing.UtilizationCutoff {
		t.Errorf("batch variant max utilisation %v", batch.MaxUtilization())
	}
}

func TestConnectionCostFormula(t *testing.T) {
	cfg, ex := figure1Config()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Zero load: TC = C·W1 + (0 + z)·W2.
	h1, s1 := ex.Hosts[0], ex.Servers[0]
	want := 1*4.0 + (0+0.5)*1
	if got := a.ConnectionCost(h1, s1); math.Abs(got-want) > 1e-12 {
		t.Errorf("TC(H1,S1) zero-load = %v, want %v", got, want)
	}
	// H2→S1 has C=2.
	want = 2*4.0 + 0.5
	if got := a.ConnectionCost(ex.Hosts[1], s1); math.Abs(got-want) > 1e-12 {
		t.Errorf("TC(H2,S1) zero-load = %v, want %v", got, want)
	}
	// Saturated server pays the penalty.
	a.Initialize() // S2 load 150 ⇒ ρ=1.5
	got := a.ConnectionCost(ex.Hosts[1], ex.Servers[1])
	if got < queueing.SaturationPenalty {
		t.Errorf("TC to saturated server = %v, want ≥ %v", got, queueing.SaturationPenalty)
	}
}

func TestAuthorityLists(t *testing.T) {
	cfg, ex := figure1Config()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Run()
	lists := a.AuthorityLists(2)
	for hi, h := range ex.Hosts {
		list := lists[h]
		if len(list) != 2 {
			t.Fatalf("H%d list length %d, want 2", hi+1, len(list))
		}
		if a.ConnectionCost(h, list[0]) > a.ConnectionCost(h, list[1]) {
			t.Errorf("H%d authority list not cost-ordered", hi+1)
		}
	}
	// listLen clamped to the number of servers.
	all := a.AuthorityLists(0)
	if len(all[ex.Hosts[0]]) != len(ex.Servers) {
		t.Errorf("listLen 0 should return all servers")
	}
}

func TestTableRendering(t *testing.T) {
	cfg, _ := figure1Config()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Initialize()
	tb := a.Table("Table 1")
	if tb.NumRows() != 6+3 { // six host rows + three totals
		t.Errorf("table rows = %d, want 9", tb.NumRows())
	}
	rows := tb.Rows()
	if rows[0][0] != "H1" || rows[0][1] != "S1" || rows[0][2] != "50" {
		t.Errorf("first row = %v", rows[0])
	}
}

func TestLoadsCopy(t *testing.T) {
	cfg, ex := figure1Config()
	a, _ := New(cfg)
	a.Initialize()
	loads := a.Loads()
	loads[ex.Servers[0]] = -1
	if a.Load(ex.Servers[0]) == -1 {
		t.Error("Loads() exposed internal map")
	}
}

// Property: on random multi-server topologies, Run preserves the user
// population, never drives loads negative, and ends stable.
func TestPropertyBalancePreservesUsers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(10)
		g := graph.RandomConnected(rng, n, n/2, 1)
		ids := g.NodeIDs()
		numServers := 2 + rng.Intn(3)
		servers := ids[:numServers]
		hosts := ids[numServers:]
		users := make(map[graph.NodeID]int)
		maxLoad := make(map[graph.NodeID]int)
		total := 0
		for _, h := range hosts {
			users[h] = rng.Intn(40)
			total += users[h]
		}
		for _, s := range servers {
			maxLoad[s] = total/numServers + 20
		}
		a, err := New(Config{
			Topology: g, Hosts: hosts, Servers: servers,
			Users: users, MaxLoad: maxLoad,
			ProcTime: 0.5, CommW: 4, ProcW: 1,
		})
		if err != nil {
			return false
		}
		a.Run()
		got := 0
		for _, s := range servers {
			if a.Load(s) < 0 {
				return false
			}
			got += a.Load(s)
		}
		if got != total {
			return false
		}
		// Stable: no further moves.
		return a.Balance().Moves == 0
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Balancing should beat the naive baselines on cost.
func TestBalanceBeatsBaselines(t *testing.T) {
	cfg, _ := figure1Config()

	balanced, _ := New(cfg)
	balanced.Run()

	nearest, _ := New(cfg)
	nearest.Initialize()

	random, _ := New(cfg)
	random.RandomAssign(rand.New(rand.NewSource(1)))

	if balanced.TotalCost() >= nearest.TotalCost() {
		t.Errorf("balanced cost %v not below nearest-only cost %v",
			balanced.TotalCost(), nearest.TotalCost())
	}
	if balanced.MaxUtilization() >= nearest.MaxUtilization() {
		t.Errorf("balanced max util %v not below nearest-only %v",
			balanced.MaxUtilization(), nearest.MaxUtilization())
	}
	if random.TotalCost() < balanced.TotalCost() {
		t.Errorf("random baseline cost %v beat balanced %v", random.TotalCost(), balanced.TotalCost())
	}
}

// §3.1.1's final modification: "include variable communication delays by
// having approximate queuing delays that is a function of the channel
// utilization". A congested link must repel the assignment.
func TestChannelUtilizationShiftsAssignment(t *testing.T) {
	// H1 sits between S1 (1 unit away) and S2 (2 units away). With the
	// H1-S1 channel heavily loaded, S2 becomes the cheaper choice.
	g := graph.New()
	g.MustAddNode(graph.Node{ID: 1, Label: "H1", Kind: graph.KindHost})
	g.MustAddNode(graph.Node{ID: 101, Label: "S1", Kind: graph.KindServer})
	g.MustAddNode(graph.Node{ID: 102, Label: "S2", Kind: graph.KindServer})
	g.MustAddEdge(1, 101, 1)
	g.MustAddEdge(1, 102, 2)
	base := Config{
		Topology: g,
		Hosts:    []graph.NodeID{1},
		Servers:  []graph.NodeID{101, 102},
		Users:    map[graph.NodeID]int{1: 10},
		MaxLoad:  map[graph.NodeID]int{101: 100, 102: 100},
		ProcTime: 0.5, CommW: 4, ProcW: 1,
	}

	light, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	light.Run()
	if light.Assigned(1, 101) != 10 {
		t.Fatalf("light load: users not on the nearer S1")
	}

	congested := base
	congested.ChannelUtil = func(a, b graph.NodeID) float64 {
		if (a == 1 && b == 101) || (a == 101 && b == 1) {
			return 0.8 // H1-S1 channel at 80%: factor 1+4 = 5 → cost 5
		}
		return 0
	}
	loaded, err := New(congested)
	if err != nil {
		t.Fatal(err)
	}
	loaded.Run()
	if loaded.Assigned(1, 102) != 10 {
		t.Errorf("congested H1-S1: users stayed on S1 (C to S1 = %v, S2 = %v)",
			loaded.Comm(1, 101), loaded.Comm(1, 102))
	}
	if got := loaded.Comm(1, 101); math.Abs(got-5) > 1e-9 {
		t.Errorf("congested C(H1,S1) = %v, want 5", got)
	}
}

func TestChannelUtilSaturatedLinkStillFinite(t *testing.T) {
	g := graph.New()
	g.MustAddNode(graph.Node{ID: 1, Kind: graph.KindHost})
	g.MustAddNode(graph.Node{ID: 2, Kind: graph.KindServer})
	g.MustAddEdge(1, 2, 1)
	cfg := Config{
		Topology: g, Hosts: []graph.NodeID{1}, Servers: []graph.NodeID{2},
		Users: map[graph.NodeID]int{1: 1}, MaxLoad: map[graph.NodeID]int{2: 10},
		CommW: 1, ProcW: 1,
		ChannelUtil: func(a, b graph.NodeID) float64 { return 1.5 }, // saturated
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Run()
	if a.Load(2) != 1 {
		t.Error("user unassigned under saturated channel")
	}
	// Saturated channels get the (finite) saturation penalty factor.
	if c := a.Comm(1, 2); !(c > 1e6) || math.IsInf(c, 0) {
		t.Errorf("saturated channel cost = %v", c)
	}
}
