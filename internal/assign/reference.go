package assign

import (
	"fmt"
	"math"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/queueing"
)

// This file retains the original map-of-maps balancer as a reference
// implementation. It is the pre-optimization engine, kept verbatim in shape
// (map state, serial Dijkstra per host, O(H) serverCost rescans) so that
//
//   - the seeded equivalence property test can assert the dense engine
//     produces identical assignments, loads, and BalanceStats, and
//   - the scale benchmarks can report the speedup against the exact
//     algorithm they replaced.
//
// The only deliberate deviation: serverCost uses the same closed-form
// expression as the optimized serverCostAt (W1·ΣnC + L·W2·(Q(ρ)+z), with the
// ΣnC term recomputed by a full host rescan instead of maintained
// incrementally). The two formulations are algebraically identical; sharing
// the expression makes every accept/undo comparison bit-for-bit equal on
// exactly representable communication costs (e.g. the integer edge weights
// graph.RandomConnected generates).

// referenceBalance is the old engine: it validates cfg, computes the
// zero-load costs serially, and returns the map-based assignment ready for
// run().
func referenceBalance(cfg Config) (*referenceAssignment, error) {
	cfg, err := normalizeConfig(cfg)
	if err != nil {
		return nil, err
	}
	r := &referenceAssignment{
		cfg:   cfg,
		comm:  make(map[graph.NodeID]map[graph.NodeID]float64, len(cfg.Hosts)),
		users: make(map[graph.NodeID]map[graph.NodeID]int, len(cfg.Hosts)),
		loads: make(map[graph.NodeID]int, len(cfg.Servers)),
	}
	for _, s := range cfg.Servers {
		r.loads[s] = 0
	}
	topo := cfg.Topology
	if cfg.ChannelUtil != nil {
		weighted, err := utilizationWeighted(cfg.Topology, cfg.ChannelUtil)
		if err != nil {
			return nil, err
		}
		topo = weighted
	}
	for _, h := range cfg.Hosts {
		paths, err := topo.ShortestPaths(h)
		if err != nil {
			return nil, err
		}
		row := make(map[graph.NodeID]float64, len(cfg.Servers))
		reachable := false
		for _, s := range cfg.Servers {
			if d, ok := paths.Dist[s]; ok {
				row[s] = d
				reachable = true
			} else {
				row[s] = math.Inf(1)
			}
		}
		if !reachable && cfg.Users[h] > 0 {
			return nil, fmt.Errorf("%w: host %d", ErrUnreachable, h)
		}
		r.comm[h] = row
		r.users[h] = make(map[graph.NodeID]int, len(cfg.Servers))
	}
	return r, nil
}

// referenceAssignment is the old map-based assignment state.
type referenceAssignment struct {
	cfg   Config
	comm  map[graph.NodeID]map[graph.NodeID]float64 // C(i,j), one-way shortest path
	users map[graph.NodeID]map[graph.NodeID]int     // A[host][server]
	loads map[graph.NodeID]int                      // L[server]
}

func (r *referenceAssignment) initialize() {
	for _, s := range r.cfg.Servers {
		r.loads[s] = 0
	}
	for _, h := range r.cfg.Hosts {
		r.users[h] = make(map[graph.NodeID]int, len(r.cfg.Servers))
		n := r.cfg.Users[h]
		if n == 0 {
			continue
		}
		best := r.nearestServer(h)
		r.users[h][best] = n
		r.loads[best] += n
	}
}

func (r *referenceAssignment) nearestServer(h graph.NodeID) graph.NodeID {
	best := r.cfg.Servers[0]
	bestC := r.comm[h][best]
	for _, s := range r.cfg.Servers[1:] {
		if c := r.comm[h][s]; c < bestC {
			best, bestC = s, c
		}
	}
	return best
}

func (r *referenceAssignment) connectionCost(host, server graph.NodeID) float64 {
	c := r.comm[host][server]
	if math.IsInf(c, 1) {
		return math.Inf(1)
	}
	wait := queueing.Wait(queueing.Utilization(r.loads[server], r.cfg.MaxLoad[server]))
	return c*r.cfg.CommW + (wait+r.cfg.ProcTime)*r.cfg.ProcW
}

func (r *referenceAssignment) balance() BalanceStats {
	var stats BalanceStats
	const eps = 1e-9
	for stats.Sweeps < r.cfg.MaxIterations {
		stats.Sweeps++
		changed := false
		for _, h := range r.cfg.Hosts {
			for { // keep improving this host while moves help
				sMin, sMax, ok := r.minMaxServers(h)
				if !ok || sMin == sMax {
					break
				}
				if !(r.connectionCost(h, sMin) < r.connectionCost(h, sMax)-eps) {
					break
				}
				batch := r.cfg.MoveBatch
				if avail := r.users[h][sMax]; batch > avail {
					batch = avail
				}
				before := r.serverCost(sMin) + r.serverCost(sMax)
				r.move(h, sMax, sMin, batch)
				after := r.serverCost(sMin) + r.serverCost(sMax)
				if after < before-eps {
					changed = true
					stats.Moves++
					stats.UsersMoved += batch
				} else {
					r.move(h, sMin, sMax, batch) // undo
					stats.Undone++
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	for _, s := range r.cfg.Servers {
		if r.loads[s] > r.cfg.MaxLoad[s] {
			stats.Overloaded = append(stats.Overloaded, s)
		}
	}
	return stats
}

func (r *referenceAssignment) minMaxServers(h graph.NodeID) (sMin, sMax graph.NodeID, ok bool) {
	minCost := math.Inf(1)
	maxCost := math.Inf(-1)
	for _, s := range r.cfg.Servers {
		c := r.connectionCost(h, s)
		if c < minCost {
			minCost, sMin = c, s
		}
		if r.users[h][s] > 0 && c > maxCost {
			maxCost, sMax = c, s
			ok = true
		}
	}
	return sMin, sMax, ok
}

// serverCost is the O(H) rescan the optimized engine replaced: the ΣnC term
// is recomputed from scratch on every call. The final expression mirrors
// serverCostAt exactly (see the file comment).
func (r *referenceAssignment) serverCost(s graph.NodeID) float64 {
	var sumNC float64
	for _, h := range r.cfg.Hosts {
		if n := r.users[h][s]; n > 0 {
			sumNC += float64(n) * r.comm[h][s]
		}
	}
	wait := queueing.Wait(queueing.Utilization(r.loads[s], r.cfg.MaxLoad[s]))
	return r.cfg.CommW*sumNC + float64(r.loads[s])*r.cfg.ProcW*(wait+r.cfg.ProcTime)
}

func (r *referenceAssignment) move(h, from, to graph.NodeID, n int) {
	if n <= 0 {
		return
	}
	r.users[h][from] -= n
	if r.users[h][from] == 0 {
		delete(r.users[h], from)
	}
	r.users[h][to] += n
	r.loads[from] -= n
	r.loads[to] += n
}

func (r *referenceAssignment) run() BalanceStats {
	r.initialize()
	return r.balance()
}

func (r *referenceAssignment) totalCost() float64 {
	var total float64
	for _, s := range r.cfg.Servers {
		total += r.serverCost(s)
	}
	return total
}
