package assign

import (
	"errors"
	"testing"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/queueing"
)

// figure1WithSpareServer builds the Figure 1 example plus a fourth,
// initially unused server S4 attached to S3.
func figure1WithSpareServer(t *testing.T) (*Assignment, graph.Example, graph.NodeID) {
	t.Helper()
	cfg, ex := figure1Config()
	spare := graph.ServerBase + 4
	cfg.Topology.MustAddNode(graph.Node{ID: spare, Label: "S4", Region: "R1", Kind: graph.KindServer})
	cfg.Topology.MustAddEdge(spare, ex.Servers[2], 1)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Run()
	return a, ex, spare
}

func TestAddServerRebalances(t *testing.T) {
	a, ex, spare := figure1WithSpareServer(t)
	utilBefore := a.MaxUtilization()
	stats, err := a.AddServer(spare, 100)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Moves == 0 {
		t.Error("adding a server moved no users")
	}
	if a.Load(spare) == 0 {
		t.Error("new server got no load; §3.1.3c requires redistribution onto it")
	}
	if a.MaxUtilization() > utilBefore {
		t.Errorf("max utilisation rose after adding a server: %v → %v", utilBefore, a.MaxUtilization())
	}
	if got := totalAssigned(a, append(ex.Servers, spare)); got != 270 {
		t.Errorf("total assigned = %d, want 270", got)
	}
}

func TestAddServerErrors(t *testing.T) {
	a, ex, _ := figure1WithSpareServer(t)
	if _, err := a.AddServer(9999, 100); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown node: err = %v", err)
	}
	if _, err := a.AddServer(ex.Servers[0], 100); err == nil {
		t.Error("duplicate server accepted")
	}
}

func TestRemoveServerRedistributes(t *testing.T) {
	a, ex, spare := figure1WithSpareServer(t)
	if _, err := a.AddServer(spare, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := a.RemoveServer(spare); err != nil {
		t.Fatal(err)
	}
	if got := totalAssigned(a, ex.Servers); got != 270 {
		t.Errorf("total assigned after removal = %d, want 270", got)
	}
	for _, h := range ex.Hosts {
		if a.Assigned(h, spare) != 0 {
			t.Errorf("host %d still has users on removed server", h)
		}
	}
	if a.Balance().Moves != 0 {
		t.Error("state not stable after RemoveServer")
	}
}

func TestRemoveServerErrors(t *testing.T) {
	cfg, ex := table3Config()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Run()
	if _, err := a.RemoveServer(9999); err == nil {
		t.Error("removing unknown server succeeded")
	}
	if _, err := a.RemoveServer(ex.Servers[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := a.RemoveServer(ex.Servers[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := a.RemoveServer(ex.Servers[2]); !errors.Is(err, ErrNoServers) {
		t.Errorf("removing last server: err = %v, want ErrNoServers", err)
	}
}

func TestRemoveServerOverloadReported(t *testing.T) {
	// Removing a server when the remainder cannot absorb its load must
	// report overload rather than lose users.
	cfg, ex := table3Config()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Run()
	stats, err := a.RemoveServer(ex.Servers[2])
	if err != nil {
		t.Fatal(err)
	}
	if got := totalAssigned(a, ex.Servers[:2]); got != 220 {
		t.Errorf("total = %d, want 220", got)
	}
	if len(stats.Overloaded) == 0 {
		t.Error("220 users on 2×100-capacity servers should report overload")
	}
}

func TestAddHost(t *testing.T) {
	cfg, ex := figure1Config()
	newHost := graph.HostBase + 7
	cfg.Topology.MustAddNode(graph.Node{ID: newHost, Label: "H7", Region: "R1", Kind: graph.KindHost})
	cfg.Topology.MustAddEdge(newHost, ex.Servers[2], 1)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Run()
	if _, err := a.AddHost(newHost, 25); err != nil {
		t.Fatal(err)
	}
	if got := totalAssigned(a, ex.Servers); got != 295 {
		t.Errorf("total = %d, want 295", got)
	}
	if _, err := a.AddHost(newHost, 5); err == nil {
		t.Error("duplicate AddHost accepted")
	}
	if _, err := a.AddHost(8888, 5); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown AddHost err = %v", err)
	}
	if _, err := a.RemoveHost(newHost); err != nil {
		t.Fatal(err)
	}
	if got := totalAssigned(a, ex.Servers); got != 270 {
		t.Errorf("total after RemoveHost = %d, want 270", got)
	}
	if _, err := a.RemoveHost(newHost); err == nil {
		t.Error("double RemoveHost accepted")
	}
}

func TestAddRemoveUsers(t *testing.T) {
	cfg, ex := figure1Config()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Run()
	if _, err := a.AddUsers(ex.Hosts[5], 30); err != nil {
		t.Fatal(err)
	}
	if got := totalAssigned(a, ex.Servers); got != 300 {
		t.Errorf("total = %d, want 300", got)
	}
	if _, err := a.RemoveUsers(ex.Hosts[5], 50); err != nil {
		t.Fatal(err)
	}
	if got := totalAssigned(a, ex.Servers); got != 250 {
		t.Errorf("total = %d, want 250", got)
	}
	if _, err := a.RemoveUsers(ex.Hosts[5], 100000); err == nil {
		t.Error("removing more users than exist accepted")
	}
	if _, err := a.AddUsers(9999, 1); err == nil {
		t.Error("AddUsers on unknown host accepted")
	}
	if _, err := a.AddUsers(ex.Hosts[0], -1); !errors.Is(err, ErrNegativeUsers) {
		t.Errorf("negative AddUsers err = %v", err)
	}
	if _, err := a.RemoveUsers(ex.Hosts[0], -1); !errors.Is(err, ErrNegativeUsers) {
		t.Errorf("negative RemoveUsers err = %v", err)
	}
	if a.MaxUtilization() >= queueing.UtilizationCutoff {
		t.Errorf("unbalanced after user churn: max util %v", a.MaxUtilization())
	}
}

// Growth scenario from §3.1.3a: "if many users are added, and existing
// servers are overloaded, then new servers should be added" — adding the
// server must resolve the overload that user growth created.
func TestGrowthScenario(t *testing.T) {
	a, ex, spare := figure1WithSpareServer(t)
	stats, err := a.AddUsers(ex.Hosts[0], 60) // 330 users on 300 capacity
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Overloaded) == 0 {
		t.Fatal("expected overload after growth beyond capacity")
	}
	stats, err = a.AddServer(spare, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Overloaded) != 0 {
		t.Errorf("overload persists after adding a server: %v", stats.Overloaded)
	}
}
