package assign

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/largemail/largemail/internal/graph"
)

// This file implements §3.1.3 (Reconfiguration): adding and deleting users,
// hosts, and servers "starting from a specified configuration", each
// followed by the balancing procedure so "the load ... [is] redistributed
// among the servers using the algorithm for server assignment".

// AddServer registers a new candidate server and rebalances. Per §3.1.3c,
// "adding a new server requires the system to be reconfigured ... the server
// assignment procedure is performed to redistribute the load so that some
// users are assigned to the new server."
func (a *Assignment) AddServer(id graph.NodeID, maxLoad int) (BalanceStats, error) {
	if _, ok := a.cfg.Topology.Node(id); !ok {
		return BalanceStats{}, fmt.Errorf("%w: server %d", ErrUnknownNode, id)
	}
	if _, dup := a.loads[id]; dup {
		return BalanceStats{}, fmt.Errorf("assign: server %d already present", id)
	}
	paths, err := a.cfg.Topology.ShortestPaths(id)
	if err != nil {
		return BalanceStats{}, err
	}
	a.cfg.Servers = append(a.cfg.Servers, id)
	if a.cfg.MaxLoad == nil {
		a.cfg.MaxLoad = make(map[graph.NodeID]int)
	}
	a.cfg.MaxLoad[id] = maxLoad
	a.loads[id] = 0
	for _, h := range a.cfg.Hosts {
		if d, ok := paths.Dist[h]; ok { // undirected: dist(server,host) == dist(host,server)
			a.comm[h][id] = d
		} else {
			a.comm[h][id] = math.Inf(1)
		}
	}
	return a.Balance(), nil
}

// RemoveServer deletes a server, moves its users to their nearest remaining
// server, and rebalances. Per §3.1.3c, "the server to be deleted notifies
// all other servers before it is removed. Those servers then cooperate to
// share the load of the removed server."
func (a *Assignment) RemoveServer(id graph.NodeID) (BalanceStats, error) {
	if _, ok := a.loads[id]; !ok {
		return BalanceStats{}, fmt.Errorf("assign: server %d not present", id)
	}
	if len(a.cfg.Servers) == 1 {
		return BalanceStats{}, ErrNoServers
	}
	servers := a.cfg.Servers[:0]
	for _, s := range a.cfg.Servers {
		if s != id {
			servers = append(servers, s)
		}
	}
	a.cfg.Servers = servers
	for _, h := range a.cfg.Hosts {
		if n := a.users[h][id]; n > 0 {
			delete(a.users[h], id)
			dest := a.nearestServer(h)
			a.users[h][dest] += n
			a.loads[dest] += n
		}
		delete(a.comm[h], id)
	}
	delete(a.loads, id)
	delete(a.cfg.MaxLoad, id)
	return a.Balance(), nil
}

// AddHost registers a host with the given user population, assigns them to
// the nearest server, and rebalances (§3.1.3b: "when a new host is added to
// the system, the new load is distributed among the servers in the region").
func (a *Assignment) AddHost(id graph.NodeID, users int) (BalanceStats, error) {
	if _, ok := a.cfg.Topology.Node(id); !ok {
		return BalanceStats{}, fmt.Errorf("%w: host %d", ErrUnknownNode, id)
	}
	if _, dup := a.comm[id]; dup {
		return BalanceStats{}, fmt.Errorf("assign: host %d already present", id)
	}
	if users < 0 {
		return BalanceStats{}, fmt.Errorf("%w: %d", ErrNegativeUsers, users)
	}
	paths, err := a.cfg.Topology.ShortestPaths(id)
	if err != nil {
		return BalanceStats{}, err
	}
	row := make(map[graph.NodeID]float64, len(a.cfg.Servers))
	reachable := false
	for _, s := range a.cfg.Servers {
		if d, ok := paths.Dist[s]; ok {
			row[s] = d
			reachable = true
		} else {
			row[s] = math.Inf(1)
		}
	}
	if !reachable && users > 0 {
		return BalanceStats{}, fmt.Errorf("%w: host %d", ErrUnreachable, id)
	}
	a.cfg.Hosts = append(a.cfg.Hosts, id)
	if a.cfg.Users == nil {
		a.cfg.Users = make(map[graph.NodeID]int)
	}
	a.cfg.Users[id] = users
	a.comm[id] = row
	a.users[id] = make(map[graph.NodeID]int, len(a.cfg.Servers))
	if users > 0 {
		dest := a.nearestServer(id)
		a.users[id][dest] = users
		a.loads[dest] += users
	}
	return a.Balance(), nil
}

// RemoveHost deletes a host and its users, then rebalances (§3.1.3b: "if a
// host is removed, the load balancing state among the servers is upset and
// our load balancing algorithm should be applied").
func (a *Assignment) RemoveHost(id graph.NodeID) (BalanceStats, error) {
	if _, ok := a.comm[id]; !ok {
		return BalanceStats{}, fmt.Errorf("assign: host %d not present", id)
	}
	for s, n := range a.users[id] {
		a.loads[s] -= n
	}
	delete(a.users, id)
	delete(a.comm, id)
	delete(a.cfg.Users, id)
	hosts := a.cfg.Hosts[:0]
	for _, h := range a.cfg.Hosts {
		if h != id {
			hosts = append(hosts, h)
		}
	}
	a.cfg.Hosts = hosts
	return a.Balance(), nil
}

// AddUsers adds n users to an existing host, placing them on the host's
// currently cheapest server, and rebalances (§3.1.3a).
func (a *Assignment) AddUsers(host graph.NodeID, n int) (BalanceStats, error) {
	if _, ok := a.comm[host]; !ok {
		return BalanceStats{}, fmt.Errorf("assign: host %d not present", host)
	}
	if n < 0 {
		return BalanceStats{}, fmt.Errorf("%w: %d", ErrNegativeUsers, n)
	}
	a.cfg.Users[host] += n
	sMin, _, _ := a.minMaxServers(host)
	a.users[host][sMin] += n
	a.loads[sMin] += n
	return a.Balance(), nil
}

// RemoveUsers removes n users from a host, taking them from the host's most
// expensive servers first, and rebalances (§3.1.3a).
func (a *Assignment) RemoveUsers(host graph.NodeID, n int) (BalanceStats, error) {
	if _, ok := a.comm[host]; !ok {
		return BalanceStats{}, fmt.Errorf("assign: host %d not present", host)
	}
	if n < 0 {
		return BalanceStats{}, fmt.Errorf("%w: %d", ErrNegativeUsers, n)
	}
	if n > a.cfg.Users[host] {
		return BalanceStats{}, fmt.Errorf("assign: host %d has only %d users, cannot remove %d",
			host, a.cfg.Users[host], n)
	}
	a.cfg.Users[host] -= n
	for n > 0 {
		_, sMax, ok := a.minMaxServers(host)
		if !ok {
			break
		}
		take := a.users[host][sMax]
		if take > n {
			take = n
		}
		a.users[host][sMax] -= take
		if a.users[host][sMax] == 0 {
			delete(a.users[host], sMax)
		}
		a.loads[sMax] -= take
		n -= take
	}
	return a.Balance(), nil
}

// RandomAssign discards the current assignment and distributes every host's
// users uniformly at random over the servers — a deliberately naive baseline
// for the ablation benchmarks.
func (a *Assignment) RandomAssign(rng *rand.Rand) {
	for _, s := range a.cfg.Servers {
		a.loads[s] = 0
	}
	for _, h := range a.cfg.Hosts {
		a.users[h] = make(map[graph.NodeID]int, len(a.cfg.Servers))
		for k := 0; k < a.cfg.Users[h]; k++ {
			s := a.cfg.Servers[rng.Intn(len(a.cfg.Servers))]
			a.users[h][s]++
			a.loads[s]++
		}
	}
}
