package assign

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/largemail/largemail/internal/graph"
)

// This file implements §3.1.3 (Reconfiguration): adding and deleting users,
// hosts, and servers "starting from a specified configuration", each
// followed by the balancing procedure so "the load ... [is] redistributed
// among the servers using the algorithm for server assignment".
//
// Reconfiguration ops mutate the dense state (append or remove a row/column
// of the comm/users matrices and the per-server slices); they are O(H·S)
// worst case, which is fine for the rare structural changes — the hot path
// is the Balance call that follows each of them.

// serverDistances runs one Dijkstra from id on the topology's frozen view
// and returns the distance to every host, in cfg.Hosts order (undirected:
// dist(server,host) == dist(host,server)). Unreachable hosts get +Inf.
func (a *Assignment) distancesFrom(id graph.NodeID) ([]float64, error) {
	f := a.cfg.Topology.Frozen()
	fi, ok := f.IndexOf(id)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	dist := make([]float64, f.Len())
	prev := make([]int32, f.Len())
	f.ShortestFrom(fi, dist, prev)
	return dist, nil
}

// AddServer registers a new candidate server and rebalances. Per §3.1.3c,
// "adding a new server requires the system to be reconfigured ... the server
// assignment procedure is performed to redistribute the load so that some
// users are assigned to the new server."
func (a *Assignment) AddServer(id graph.NodeID, maxLoad int) (BalanceStats, error) {
	if _, ok := a.cfg.Topology.Node(id); !ok {
		return BalanceStats{}, fmt.Errorf("%w: server %d", ErrUnknownNode, id)
	}
	if _, dup := a.serverIdx[id]; dup {
		return BalanceStats{}, fmt.Errorf("assign: server %d already present", id)
	}
	dist, err := a.distancesFrom(id)
	if err != nil {
		return BalanceStats{}, err
	}
	f := a.cfg.Topology.Frozen()
	si := len(a.cfg.Servers)
	a.cfg.Servers = append(a.cfg.Servers, id)
	a.serverIdx[id] = si
	if a.cfg.MaxLoad == nil {
		a.cfg.MaxLoad = make(map[graph.NodeID]int)
	}
	a.cfg.MaxLoad[id] = maxLoad
	a.maxLoad = append(a.maxLoad, maxLoad)
	a.loads = append(a.loads, 0)
	a.sumNC = append(a.sumNC, 0)
	for hi, h := range a.cfg.Hosts {
		d := math.Inf(1)
		if fi, ok := f.IndexOf(h); ok {
			d = dist[fi]
		}
		a.comm[hi] = append(a.comm[hi], d)
		a.users[hi] = append(a.users[hi], 0)
	}
	return a.Balance(), nil
}

// RemoveServer deletes a server, moves its users to their nearest remaining
// server, and rebalances. Per §3.1.3c, "the server to be deleted notifies
// all other servers before it is removed. Those servers then cooperate to
// share the load of the removed server."
func (a *Assignment) RemoveServer(id graph.NodeID) (BalanceStats, error) {
	si, ok := a.serverIdx[id]
	if !ok {
		return BalanceStats{}, fmt.Errorf("assign: server %d not present", id)
	}
	if len(a.cfg.Servers) == 1 {
		return BalanceStats{}, ErrNoServers
	}
	// Capture the orphaned users before the column disappears.
	orphans := make([]int, len(a.cfg.Hosts))
	for hi := range a.cfg.Hosts {
		orphans[hi] = a.users[hi][si]
	}
	// Remove column si everywhere and reindex the servers after it.
	a.cfg.Servers = append(a.cfg.Servers[:si], a.cfg.Servers[si+1:]...)
	a.loads = append(a.loads[:si], a.loads[si+1:]...)
	a.maxLoad = append(a.maxLoad[:si], a.maxLoad[si+1:]...)
	a.sumNC = append(a.sumNC[:si], a.sumNC[si+1:]...)
	delete(a.serverIdx, id)
	for j := si; j < len(a.cfg.Servers); j++ {
		a.serverIdx[a.cfg.Servers[j]] = j
	}
	for hi := range a.cfg.Hosts {
		a.comm[hi] = append(a.comm[hi][:si], a.comm[hi][si+1:]...)
		a.users[hi] = append(a.users[hi][:si], a.users[hi][si+1:]...)
	}
	delete(a.cfg.MaxLoad, id)
	// Re-home the orphans on each host's nearest remaining server.
	for hi, n := range orphans {
		if n > 0 {
			dest := a.nearestServerIdx(hi)
			a.users[hi][dest] += n
			a.loads[dest] += n
			a.sumNC[dest] += float64(n) * a.comm[hi][dest]
		}
	}
	return a.Balance(), nil
}

// AddHost registers a host with the given user population, assigns them to
// the nearest server, and rebalances (§3.1.3b: "when a new host is added to
// the system, the new load is distributed among the servers in the region").
func (a *Assignment) AddHost(id graph.NodeID, users int) (BalanceStats, error) {
	if _, ok := a.cfg.Topology.Node(id); !ok {
		return BalanceStats{}, fmt.Errorf("%w: host %d", ErrUnknownNode, id)
	}
	if _, dup := a.hostIdx[id]; dup {
		return BalanceStats{}, fmt.Errorf("assign: host %d already present", id)
	}
	if users < 0 {
		return BalanceStats{}, fmt.Errorf("%w: %d", ErrNegativeUsers, users)
	}
	dist, err := a.distancesFrom(id)
	if err != nil {
		return BalanceStats{}, err
	}
	f := a.cfg.Topology.Frozen()
	row := make([]float64, len(a.cfg.Servers))
	reachable := false
	for j, s := range a.cfg.Servers {
		d := math.Inf(1)
		if fi, ok := f.IndexOf(s); ok {
			d = dist[fi]
		}
		row[j] = d
		if !math.IsInf(d, 1) {
			reachable = true
		}
	}
	if !reachable && users > 0 {
		return BalanceStats{}, fmt.Errorf("%w: host %d", ErrUnreachable, id)
	}
	hi := len(a.cfg.Hosts)
	a.cfg.Hosts = append(a.cfg.Hosts, id)
	a.hostIdx[id] = hi
	if a.cfg.Users == nil {
		a.cfg.Users = make(map[graph.NodeID]int)
	}
	a.cfg.Users[id] = users
	a.comm = append(a.comm, row)
	a.users = append(a.users, make([]int, len(a.cfg.Servers)))
	if users > 0 {
		dest := a.nearestServerIdx(hi)
		a.users[hi][dest] = users
		a.loads[dest] += users
		a.sumNC[dest] += float64(users) * a.comm[hi][dest]
	}
	return a.Balance(), nil
}

// RemoveHost deletes a host and its users, then rebalances (§3.1.3b: "if a
// host is removed, the load balancing state among the servers is upset and
// our load balancing algorithm should be applied").
func (a *Assignment) RemoveHost(id graph.NodeID) (BalanceStats, error) {
	hi, ok := a.hostIdx[id]
	if !ok {
		return BalanceStats{}, fmt.Errorf("assign: host %d not present", id)
	}
	for j, n := range a.users[hi] {
		if n > 0 {
			a.loads[j] -= n
			a.sumNC[j] -= float64(n) * a.comm[hi][j]
		}
	}
	a.cfg.Hosts = append(a.cfg.Hosts[:hi], a.cfg.Hosts[hi+1:]...)
	a.comm = append(a.comm[:hi], a.comm[hi+1:]...)
	a.users = append(a.users[:hi], a.users[hi+1:]...)
	delete(a.hostIdx, id)
	for i := hi; i < len(a.cfg.Hosts); i++ {
		a.hostIdx[a.cfg.Hosts[i]] = i
	}
	delete(a.cfg.Users, id)
	return a.Balance(), nil
}

// AddUsers adds n users to an existing host, placing them on the host's
// currently cheapest server, and rebalances (§3.1.3a).
func (a *Assignment) AddUsers(host graph.NodeID, n int) (BalanceStats, error) {
	hi, ok := a.hostIdx[host]
	if !ok {
		return BalanceStats{}, fmt.Errorf("assign: host %d not present", host)
	}
	if n < 0 {
		return BalanceStats{}, fmt.Errorf("%w: %d", ErrNegativeUsers, n)
	}
	a.cfg.Users[host] += n
	sMin, _, _ := a.minMaxAt(hi)
	a.users[hi][sMin] += n
	a.loads[sMin] += n
	a.sumNC[sMin] += float64(n) * a.comm[hi][sMin]
	return a.Balance(), nil
}

// RemoveUsers removes n users from a host, taking them from the host's most
// expensive servers first, and rebalances (§3.1.3a).
func (a *Assignment) RemoveUsers(host graph.NodeID, n int) (BalanceStats, error) {
	hi, ok := a.hostIdx[host]
	if !ok {
		return BalanceStats{}, fmt.Errorf("assign: host %d not present", host)
	}
	if n < 0 {
		return BalanceStats{}, fmt.Errorf("%w: %d", ErrNegativeUsers, n)
	}
	if n > a.cfg.Users[host] {
		return BalanceStats{}, fmt.Errorf("assign: host %d has only %d users, cannot remove %d",
			host, a.cfg.Users[host], n)
	}
	a.cfg.Users[host] -= n
	for n > 0 {
		_, sMax, ok := a.minMaxAt(hi)
		if !ok {
			break
		}
		take := a.users[hi][sMax]
		if take > n {
			take = n
		}
		a.users[hi][sMax] -= take
		a.loads[sMax] -= take
		a.sumNC[sMax] -= float64(take) * a.comm[hi][sMax]
		n -= take
	}
	return a.Balance(), nil
}

// RandomAssign discards the current assignment and distributes every host's
// users uniformly at random over the servers — a deliberately naive baseline
// for the ablation benchmarks.
func (a *Assignment) RandomAssign(rng *rand.Rand) {
	for j := range a.loads {
		a.loads[j] = 0
		a.sumNC[j] = 0
	}
	for hi := range a.users {
		row := a.users[hi]
		for j := range row {
			row[j] = 0
		}
		for k := 0; k < a.cfg.Users[a.cfg.Hosts[hi]]; k++ {
			si := rng.Intn(len(a.cfg.Servers))
			row[si]++
			a.loads[si]++
			a.sumNC[si] += a.comm[hi][si]
		}
	}
}
