package assign_test

import (
	"fmt"

	"github.com/largemail/largemail/internal/assign"
	"github.com/largemail/largemail/internal/graph"
)

// Example runs the paper's §3.1.1 worked example: initialize on the
// Figure 1 topology (Table 1), then balance (Table 2).
func Example() {
	ex := graph.Figure1()
	commW, procW, procTime := assign.PaperWeights()
	maxLoad := make(map[graph.NodeID]int)
	for _, s := range ex.Servers {
		maxLoad[s] = 100
	}
	a, err := assign.New(assign.Config{
		Topology: ex.G, Hosts: ex.Hosts, Servers: ex.Servers,
		Users: ex.Users, MaxLoad: maxLoad,
		ProcTime: procTime, CommW: commW, ProcW: procW,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	a.Initialize()
	fmt.Printf("initial: S1=%d S2=%d S3=%d\n",
		a.Load(ex.Servers[0]), a.Load(ex.Servers[1]), a.Load(ex.Servers[2]))
	stats := a.Balance()
	fmt.Printf("balanced: S1=%d S2=%d S3=%d (overloaded: %d)\n",
		a.Load(ex.Servers[0]), a.Load(ex.Servers[1]), a.Load(ex.Servers[2]), len(stats.Overloaded))
	// Output:
	// initial: S1=100 S2=150 S3=20
	// balanced: S1=89 S2=92 S3=89 (overloaded: 0)
}
