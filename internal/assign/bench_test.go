package assign

import (
	"math/rand"
	"testing"

	"github.com/largemail/largemail/internal/graph"
)

// scaleConfig builds the large-topology instance the PR's headline
// benchmarks run on: 2 000 nodes (24 servers, 1 976 hosts), 8 000 links,
// ≈108 000 users. Integer edge weights keep the dense/reference comparison
// bit-exact (see reference.go).
func scaleConfig() Config {
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomConnected(rng, 2000, 6000, 1)
	ids := g.NodeIDs()
	servers := ids[:24]
	hosts := ids[24:]
	users := make(map[graph.NodeID]int, len(hosts))
	total := 0
	for _, h := range hosts {
		users[h] = 20 + rng.Intn(71)
		total += users[h]
	}
	maxLoad := make(map[graph.NodeID]int, len(servers))
	for _, s := range servers {
		maxLoad[s] = total/len(servers) + total/(3*len(servers))
	}
	commW, procW, procTime := PaperWeights()
	return Config{
		Topology: g, Hosts: hosts, Servers: servers,
		Users: users, MaxLoad: maxLoad,
		ProcTime: procTime, CommW: commW, ProcW: procW,
		MoveBatch: 10,
	}
}

func reportBalance(b *testing.B, stats BalanceStats, users, maxUtil float64) {
	b.ReportMetric(float64(stats.Sweeps), "sweeps")
	b.ReportMetric(float64(stats.Moves), "moves")
	b.ReportMetric(float64(stats.UsersMoved), "users_moved")
	b.ReportMetric(users, "users")
	b.ReportMetric(maxUtil, "max_util")
}

// BenchmarkBalanceScaleDense measures Initialize+Balance on the optimized
// engine: dense matrices, incrementally maintained ΣnC, O(S) move cost.
// Compare its ns/op against BenchmarkBalanceScaleReference for the PR's
// headline speedup; both engines provably produce identical assignments
// (TestPropertyDenseMatchesReference).
func BenchmarkBalanceScaleDense(b *testing.B) {
	cfg := scaleConfig()
	a, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var stats BalanceStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Initialize()
		stats = a.Balance()
	}
	total := 0
	for _, s := range cfg.Servers {
		total += a.Load(s)
	}
	reportBalance(b, stats, float64(total), a.MaxUtilization())
}

// BenchmarkBalanceScaleReference measures the same Initialize+Balance on the
// retained pre-optimization engine (map state, O(H) serverCost rescans).
func BenchmarkBalanceScaleReference(b *testing.B) {
	cfg := scaleConfig()
	r, err := referenceBalance(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var stats BalanceStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats = r.run()
	}
	maxUtil := 0.0
	total := 0
	for _, s := range r.cfg.Servers {
		total += r.loads[s]
		if u := float64(r.loads[s]) / float64(r.cfg.MaxLoad[s]); u > maxUtil {
			maxUtil = u
		}
	}
	reportBalance(b, stats, float64(total), maxUtil)
}

// BenchmarkNewScaleParallel measures full engine construction — validation
// plus the per-host Dijkstra fan-out across GOMAXPROCS workers — on the
// 2 000-node instance.
func BenchmarkNewScaleParallel(b *testing.B) {
	cfg := scaleConfig()
	cfg.Topology.Frozen() // CSR build is a one-time cost, not per-New
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewScaleReferenceSerial measures the pre-optimization serial
// construction: one map-based ShortestPaths call per host.
func BenchmarkNewScaleReferenceSerial(b *testing.B) {
	cfg := scaleConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := referenceBalance(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReconfigScale measures the §3.1.3 churn loop at scale: add users,
// remove users, and re-home a removed server's population, each followed by
// the incremental rebalance.
func BenchmarkReconfigScale(b *testing.B) {
	cfg := scaleConfig()
	a, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	a.Run()
	hosts := cfg.Hosts
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := hosts[i%len(hosts)]
		if _, err := a.AddUsers(h, 40); err != nil {
			b.Fatal(err)
		}
		if _, err := a.RemoveUsers(h, 40); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(a.MaxUtilization(), "max_util")
}
