package core_test

import (
	"fmt"

	"github.com/largemail/largemail/internal/core"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/names"
)

// Example wires the paper's Figure 1 region as a syntax-directed mail
// system, sends one message, and retrieves it with GetMail.
func Example() {
	ex := graph.Figure1()
	sys, err := core.NewSyntax(core.SyntaxConfig{
		Topology: ex.G,
		UsersPerHost: map[graph.NodeID][]string{
			ex.Hosts[0]: {"alice"},
			ex.Hosts[1]: {"bob"},
		},
		Seed: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	alice := names.MustParse("R1.H1.alice")
	bob := names.MustParse("R1.H2.bob")
	if err := sys.Send(alice, []names.Name{bob}, "hello", "body"); err != nil {
		fmt.Println(err)
		return
	}
	sys.Run()
	agent, _ := sys.Agent(bob)
	for _, m := range agent.GetMail() {
		fmt.Printf("%s: %s\n", m.From, m.Subject)
	}
	// Output: R1.H1.alice: hello
}
