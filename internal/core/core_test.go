package core

import (
	"fmt"
	"testing"

	"github.com/largemail/largemail/internal/attr"
	"github.com/largemail/largemail/internal/evalsys"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/names"
)

// twoRegionTopology builds the Figure 1 region (R1: H1..H6, S1..S3) plus a
// second region R2 with one host H7 and one server S4, joined S3-S4.
func twoRegionTopology() (*graph.Graph, map[graph.NodeID][]string) {
	ex := graph.Figure1()
	g := ex.G
	h7 := graph.HostBase + 7
	s4 := graph.ServerBase + 4
	g.MustAddNode(graph.Node{ID: h7, Label: "H7", Region: "R2", Kind: graph.KindHost})
	g.MustAddNode(graph.Node{ID: s4, Label: "S4", Region: "R2", Kind: graph.KindServer})
	g.MustAddEdge(s4, ex.Servers[2], 2)
	g.MustAddEdge(h7, s4, 1)

	users := make(map[graph.NodeID][]string)
	for i, h := range ex.Hosts {
		for u := 0; u < 3; u++ {
			users[h] = append(users[h], fmt.Sprintf("u%d_%d", i+1, u))
		}
	}
	users[h7] = []string{"remote0", "remote1"}
	return g, users
}

func newSyntaxWorld(t *testing.T) *SyntaxSystem {
	t.Helper()
	g, users := twoRegionTopology()
	s, err := NewSyntax(SyntaxConfig{Topology: g, UsersPerHost: users, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSyntaxValidation(t *testing.T) {
	if _, err := NewSyntax(SyntaxConfig{}); err == nil {
		t.Error("nil topology accepted")
	}
}

func TestSyntaxRoundTrip(t *testing.T) {
	s := newSyntaxWorld(t)
	if got := len(s.Users()); got != 20 {
		t.Fatalf("users = %d, want 20", got)
	}
	from := names.MustParse("R1.H1.u1_0")
	to := names.MustParse("R1.H2.u2_0")
	if err := s.Send(from, []names.Name{to}, "hi", "body"); err != nil {
		t.Fatal(err)
	}
	s.Run()
	a, err := s.Agent(to)
	if err != nil {
		t.Fatal(err)
	}
	got := a.GetMail()
	if len(got) != 1 || got[0].Subject != "hi" {
		t.Fatalf("GetMail = %v", got)
	}
}

func TestSyntaxCrossRegion(t *testing.T) {
	s := newSyntaxWorld(t)
	from := names.MustParse("R1.H1.u1_0")
	to := names.MustParse("R2.H7.remote0")
	if err := s.Send(from, []names.Name{to}, "xr", "b"); err != nil {
		t.Fatal(err)
	}
	s.Run()
	a, _ := s.Agent(to)
	if got := a.GetMail(); len(got) != 1 {
		t.Fatalf("cross-region GetMail = %v", got)
	}
}

func TestSyntaxUnknownUser(t *testing.T) {
	s := newSyntaxWorld(t)
	if _, err := s.Agent(names.MustParse("R1.H1.nosuch")); err == nil {
		t.Error("unknown agent returned")
	}
	if err := s.Send(names.MustParse("R1.H1.nosuch"), nil, "s", "b"); err == nil {
		t.Error("send from unknown user accepted")
	}
}

func TestSyntaxMigration(t *testing.T) {
	s := newSyntaxWorld(t)
	old := names.MustParse("R1.H1.u1_0")
	h7 := graph.HostBase + 7
	newName, err := s.MigrateUser(old, h7)
	if err != nil {
		t.Fatal(err)
	}
	if newName.Region != "R2" || newName.Host != "H7" || newName.User != "u1_0" {
		t.Errorf("new name = %v", newName)
	}
	if _, err := s.Agent(old); err == nil {
		t.Error("old agent still present")
	}
	// Mail to the OLD name is redirected to the new location (§3.1.4).
	sender := names.MustParse("R1.H2.u2_0")
	if err := s.Send(sender, []names.Name{old}, "follow", "b"); err != nil {
		t.Fatal(err)
	}
	s.Run()
	a, err := s.Agent(newName)
	if err != nil {
		t.Fatal(err)
	}
	got := a.GetMail()
	if len(got) != 1 || got[0].Subject != "follow" {
		t.Fatalf("redirected mail = %v", got)
	}
	rep := s.Evaluate()
	if rep.Flexibility.RenamesPerMigration != 1 {
		t.Errorf("renames per migration = %v, want 1", rep.Flexibility.RenamesPerMigration)
	}
	// Migration validation failures.
	if _, err := s.MigrateUser(names.MustParse("R1.H1.ghost"), h7); err == nil {
		t.Error("migrating unknown user accepted")
	}
	if _, err := s.MigrateUser(newName, 9999); err == nil {
		t.Error("migrating to unknown node accepted")
	}
	if _, err := s.MigrateUser(newName, graph.ServerBase+1); err == nil {
		t.Error("migrating to a server node accepted")
	}
}

func TestSyntaxAddServer(t *testing.T) {
	s := newSyntaxWorld(t)
	g := s.cfg.Topology
	s5 := graph.ServerBase + 5
	g.MustAddNode(graph.Node{ID: s5, Label: "S5", Region: "R1", Kind: graph.KindServer})
	g.MustAddEdge(s5, graph.ServerBase+1, 1)
	// The network topology was cloned; wire the node there too.
	s.Net.Topology().MustAddNode(graph.Node{ID: s5, Label: "S5", Region: "R1", Kind: graph.KindServer})
	if err := s.Net.RestoreLink(s5, graph.ServerBase+1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddServer(s5, "R1", 50); err != nil {
		t.Fatal(err)
	}
	if err := s.AddServer(s5, "R1", 50); err == nil {
		t.Error("duplicate AddServer accepted")
	}
	if err := s.AddServer(8888, "R9", 50); err == nil {
		t.Error("unknown region accepted")
	}
	// Mail still flows after reconfiguration.
	from := names.MustParse("R1.H1.u1_0")
	to := names.MustParse("R1.H6.u6_0")
	if err := s.Send(from, []names.Name{to}, "post-reconfig", "b"); err != nil {
		t.Fatal(err)
	}
	s.Run()
	a, _ := s.Agent(to)
	if got := a.GetMail(); len(got) != 1 {
		t.Fatalf("delivery after AddServer = %v", got)
	}
	rep := s.Evaluate()
	if rep.Flexibility.ReconfigMessages == 0 {
		t.Error("reconfig messages not counted")
	}
}

func TestSyntaxEvaluate(t *testing.T) {
	s := newSyntaxWorld(t)
	from := names.MustParse("R1.H1.u1_0")
	to := names.MustParse("R1.H3.u3_1")
	for i := 0; i < 5; i++ {
		if err := s.Send(from, []names.Name{to}, "s", "b"); err != nil {
			t.Fatal(err)
		}
		s.Run()
		a, _ := s.Agent(to)
		a.GetMail()
	}
	rep := s.Evaluate()
	if rep.Reliability.DeliveredRate != 1 {
		t.Errorf("delivered rate = %v, want 1", rep.Reliability.DeliveredRate)
	}
	if rep.Efficiency.MeanPollsPerCheck <= 0 {
		t.Errorf("polls per check = %v", rep.Efficiency.MeanPollsPerCheck)
	}
	if rep.Cost.TotalMessages == 0 || rep.Cost.TotalTrafficCost == 0 {
		t.Errorf("cost = %+v", rep.Cost)
	}
	if score := rep.Score(evalsys.DefaultWeights()); score <= 0 || score > 1 {
		t.Errorf("score = %v", score)
	}
}

// ---- location-independent ----

func singleRegionTopology() (*graph.Graph, map[graph.NodeID][]string) {
	ex := graph.Figure1()
	users := make(map[graph.NodeID][]string)
	for i, h := range ex.Hosts {
		users[h] = []string{fmt.Sprintf("w%d", i+1)}
	}
	return ex.G, users
}

func newLocationWorld(t *testing.T) *LocationSystem {
	t.Helper()
	g, users := singleRegionTopology()
	s, err := NewLocation(LocationConfig{Topology: g, Region: "R1", UsersPerHost: users, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLocationRoundTripAndRoam(t *testing.T) {
	s := newLocationWorld(t)
	if got := len(s.Users()); got != 6 {
		t.Fatalf("users = %d, want 6", got)
	}
	w1 := names.MustParse("R1.H1.w1")
	w2 := names.MustParse("R1.H2.w2")
	a1, err := s.Agent(w1)
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := s.Agent(w2)

	// w1 roams to H6 — no rename — and still gets mail and alerts.
	if err := s.MigrateUser(w1, graph.HostBase+6); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if a1.AtPrimary() {
		t.Error("agent still at primary after migration")
	}
	if err := a2.Send([]names.Name{w1}, "roam", "b"); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if got := a1.GetMail(); len(got) != 1 {
		t.Fatalf("roaming GetMail = %v", got)
	}
	if len(a1.Notifications()) != 1 {
		t.Errorf("roaming notifications = %v", a1.Notifications())
	}
	rep := s.Evaluate()
	if rep.Flexibility.RenamesPerMigration != 0 {
		t.Errorf("renames per migration = %v, want 0", rep.Flexibility.RenamesPerMigration)
	}
	if !rep.Flexibility.RoamingSupported {
		t.Error("roaming capability not reported")
	}
	if rep.Reliability.DeliveredRate != 1 {
		t.Errorf("delivered rate = %v", rep.Reliability.DeliveredRate)
	}
	if err := s.MigrateUser(names.MustParse("R1.H1.ghost"), graph.HostBase+2); err == nil {
		t.Error("migrating unknown user accepted")
	}
}

// ---- attribute-based ----

func attributeWorld(t *testing.T) *AttributeSystem {
	t.Helper()
	g := graph.New()
	regions := []string{"A", "A", "B", "B", "C"}
	for i := 1; i <= 5; i++ {
		g.MustAddNode(graph.Node{ID: graph.NodeID(i), Region: regions[i-1]})
	}
	weights := []float64{1, 4, 2, 6}
	for i := 1; i < 5; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), weights[i-1])
	}
	profiles := make(map[graph.NodeID][]*attr.Profile)
	for i := 1; i <= 5; i++ {
		p := &attr.Profile{User: names.MustParse(fmt.Sprintf("r%d.h.user%d", i, i))}
		p.Add(attr.TypeExpertise, "mail systems", attr.Public)
		if i%2 == 0 {
			p.Add(attr.TypeOrganization, "acme", attr.Public)
		}
		profiles[graph.NodeID(i)] = []*attr.Profile{p}
	}
	s, err := NewAttribute(AttributeConfig{Topology: g, Profiles: profiles, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAttributeSearch(t *testing.T) {
	s := attributeWorld(t)
	q := attr.Query{Predicates: []attr.Predicate{{Type: attr.TypeExpertise, Op: attr.OpPrefix, Pattern: "mail"}}}
	res, err := s.Search(1, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 5 || res.NodesSearched != 5 {
		t.Fatalf("full search = %+v", res)
	}
	sel := attr.Query{Predicates: []attr.Predicate{{Type: attr.TypeOrganization, Op: attr.OpEquals, Pattern: "acme"}}}
	res, err = s.Search(1, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 {
		t.Errorf("selective search matches = %v", res.Matches)
	}
	if _, err := s.Search(1, attr.Query{}, nil); err == nil {
		t.Error("empty query accepted")
	}
}

func TestAttributeTargetedSearch(t *testing.T) {
	s := attributeWorld(t)
	q := attr.Query{Predicates: []attr.Predicate{{Type: attr.TypeExpertise, Op: attr.OpPrefix, Pattern: "mail"}}}
	res, err := s.Search(1, q, map[string]bool{"A": true})
	if err != nil {
		t.Fatal(err)
	}
	if res.NodesSearched != 2 {
		t.Errorf("targeted search touched %d nodes, want 2", res.NodesSearched)
	}
}

func TestAttributeFloodCostlier(t *testing.T) {
	s := attributeWorld(t)
	q := attr.Query{Predicates: []attr.Predicate{{Type: attr.TypeExpertise, Op: attr.OpPrefix, Pattern: "mail"}}}
	tree, err := s.Search(3, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	flood, err := s.FloodSearch(3, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(flood.Matches) != len(tree.Matches) {
		t.Errorf("flood found %d, tree found %d", len(flood.Matches), len(tree.Matches))
	}
	if flood.TrafficCost <= tree.TrafficCost {
		t.Errorf("flood cost %v not above tree cost %v", flood.TrafficCost, tree.TrafficCost)
	}
}

func TestAttributeMassMailBudget(t *testing.T) {
	s := attributeWorld(t)
	q := attr.Query{Predicates: []attr.Predicate{{Type: attr.TypeExpertise, Op: attr.OpPrefix, Pattern: "mail"}}}
	rows, err := s.CostTable("A")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("cost table rows = %+v", rows)
	}
	// Budget that affords only the cheapest region(s).
	res, estimate, err := s.MassMail(1, "A", q, rows[0].Total+0.5)
	if err != nil {
		t.Fatal(err)
	}
	if estimate <= 0 || len(res.Matches) == 0 {
		t.Errorf("mass mail = %+v, estimate %v", res, estimate)
	}
	if len(res.Matches) >= 5 {
		t.Error("tiny budget reached every region")
	}
	if _, _, err := s.MassMail(1, "A", q, 0); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := s.CostTable("Z"); err == nil {
		t.Error("unknown region accepted")
	}
}

func TestSyntaxAccessors(t *testing.T) {
	s := newSyntaxWorld(t)
	servers := s.Servers()
	if len(servers) != 4 {
		t.Fatalf("Servers = %v", servers)
	}
	if _, ok := s.Server(servers[0]); !ok {
		t.Error("Server lookup failed")
	}
	if _, ok := s.Server(9999); ok {
		t.Error("phantom server")
	}
	if _, ok := s.Assignment("R1"); !ok {
		t.Error("Assignment lookup failed")
	}
	if _, ok := s.Assignment("R9"); ok {
		t.Error("phantom assignment")
	}
	if d, ok := s.Directory("R1"); !ok || d.Region() != "R1" {
		t.Error("Directory lookup failed")
	}
	s.RunFor(10)
}

func TestLocationRunFor(t *testing.T) {
	s := newLocationWorld(t)
	s.RunFor(10)
}

func TestAttributeRegistryAccessor(t *testing.T) {
	s := attributeWorld(t)
	if r, ok := s.Registry(1); !ok || r.Len() != 1 {
		t.Errorf("Registry(1) = %v, %v", r, ok)
	}
	if _, ok := s.Registry(999); ok {
		t.Error("phantom registry")
	}
}

func TestLocationFederationCrossRegion(t *testing.T) {
	g, users := twoRegionTopology() // Figure 1 R1 + one-host R2
	f, err := NewLocationFederation(FederationConfig{Topology: g, UsersPerHost: users, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Users()) != 20 {
		t.Fatalf("users = %d", len(f.Users()))
	}
	from := names.MustParse("R1.H1.u1_0")
	to := names.MustParse("R2.H7.remote0")
	sender, err := f.Agent(from)
	if err != nil {
		t.Fatal(err)
	}
	rcpt, err := f.Agent(to)
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.Send([]names.Name{to}, "cross", "b"); err != nil {
		t.Fatal(err)
	}
	f.Run()
	if got := rcpt.GetMail(); len(got) != 1 {
		t.Fatalf("cross-region GetMail = %v", got)
	}
	// The roaming-plus-cross-region combination: rcpt can't roam (single
	// host in R2), so roam a R1 user and send from R2.
	roamer := names.MustParse("R1.H2.u2_0")
	ra, _ := f.Agent(roamer)
	if err := ra.MoveTo(graph.HostBase + 6); err != nil {
		t.Fatal(err)
	}
	if err := ra.Login(); err != nil {
		t.Fatal(err)
	}
	f.Run()
	if err := rcpt.Send([]names.Name{roamer}, "to-roamer", "b"); err != nil {
		t.Fatal(err)
	}
	f.Run()
	if got := ra.GetMail(); len(got) != 1 {
		t.Errorf("roamer GetMail = %v", got)
	}
	if len(ra.Notifications()) != 1 {
		t.Errorf("roamer notifications = %v", ra.Notifications())
	}
	if _, ok := f.System("R1"); !ok {
		t.Error("System(R1) missing")
	}
	if _, err := f.Agent(names.MustParse("R9.h.x")); err == nil {
		t.Error("phantom agent")
	}
}

func TestLocationFederationValidation(t *testing.T) {
	if _, err := NewLocationFederation(FederationConfig{}); err == nil {
		t.Error("nil topology accepted")
	}
	g := graph.New()
	g.MustAddNode(graph.Node{ID: 1, Region: "R1", Kind: graph.KindRouter})
	if _, err := NewLocationFederation(FederationConfig{Topology: g}); err == nil {
		t.Error("serverless topology accepted")
	}
}
