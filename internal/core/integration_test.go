package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/sim"
)

// TestSyntaxSystemRandomizedNoLoss drives a full two-region world through a
// randomized workload with server churn and mid-run migrations, then checks
// the global §5 guarantee: every accepted submission is retrieved exactly
// once, system-wide.
func TestSyntaxSystemRandomizedNoLoss(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			g, users := twoRegionTopology()
			s, err := NewSyntax(SyntaxConfig{
				Topology: g, UsersPerHost: users,
				AuthorityLen: 3, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			population := s.Users()
			servers := s.Servers()

			sent := 0
			for round := 0; round < 120; round++ {
				// Churn R1's servers; keep the single R2 server up so
				// cross-region forwards always have a live target region.
				anyUp := false
				for _, id := range servers {
					n, _ := g.Node(id)
					if n.Region != "R1" {
						continue
					}
					if rng.Float64() < 0.25 {
						s.Net.Crash(id)
					} else {
						s.Net.Recover(id)
						anyUp = true
					}
				}
				if !anyUp {
					for _, id := range servers {
						if n, _ := g.Node(id); n.Region == "R1" {
							s.Net.Recover(id)
							break
						}
					}
				}
				from := population[rng.Intn(len(population))]
				to := population[rng.Intn(len(population))]
				if from == to {
					continue
				}
				if err := s.Send(from, []names.Name{to}, "r", "b"); err == nil {
					sent++
				}
				s.RunFor(30 * sim.Unit)
				// A random user checks mail.
				u := population[rng.Intn(len(population))]
				if a, err := s.Agent(u); err == nil {
					a.GetMail()
				}
			}

			// One mid-run migration: a random R1 user moves to R2.
			var mover names.Name
			for _, u := range population {
				if u.Region == "R1" {
					mover = u
					break
				}
			}
			// The old agent leaves the population at migration; bank what it
			// received so the global count stays exact.
			movedReceived := 0
			if a, err := s.Agent(mover); err == nil {
				a.GetMail() // drain before the move so nothing is stranded mid-handover
				movedReceived = a.Stats().Received
			}
			newName, err := s.MigrateUser(mover, graph.HostBase+7)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Send(population[1], []names.Name{mover}, "redirected", "b"); err == nil {
				sent++
			}
			s.Run()

			// Settle: recover everything, drain all agents twice.
			for _, id := range servers {
				s.Net.Recover(id)
			}
			s.RunFor(500 * sim.Unit)
			s.Run()
			received := movedReceived
			for _, u := range s.Users() {
				a, err := s.Agent(u)
				if err != nil {
					t.Fatal(err)
				}
				a.GetMail()
				a.GetMail()
				received += a.Stats().Received
			}
			_ = newName
			if received != sent {
				t.Errorf("received %d of %d accepted messages", received, sent)
			}
			rep := s.Evaluate()
			if rep.Reliability.DeliveredRate < 1 {
				t.Errorf("delivered rate = %v", rep.Reliability.DeliveredRate)
			}
		})
	}
}
