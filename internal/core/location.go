package core

import (
	"errors"
	"fmt"
	"sort"

	"github.com/largemail/largemail/internal/evalsys"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/locind"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/sim"
)

// LocationConfig describes a limited location-independent world (§3.2). The
// design's flexibility lives inside a region, so the system is built for one
// region of the topology.
type LocationConfig struct {
	Topology *graph.Graph
	Region   string
	// UsersPerHost lists the user tokens whose primary location is each
	// host node.
	UsersPerHost map[graph.NodeID][]string
	// Subgroups is the hash modulus (0 = 2× server count).
	Subgroups int
	Seed      int64
}

// LocationSystem is a fully wired location-independent mail system for one
// region.
type LocationSystem struct {
	Sched *sim.Scheduler
	Net   *netsim.Network
	Sys   *locind.System

	agents     map[names.Name]*locind.Agent
	migrations int64
}

// NewLocation builds the region's system: every host gets a host process,
// every user an agent at their primary location.
func NewLocation(cfg LocationConfig) (*LocationSystem, error) {
	if cfg.Topology == nil {
		return nil, errors.New("core: nil topology")
	}
	sched := sim.New(cfg.Seed)
	net := netsim.New(sched, cfg.Topology)
	var servers []graph.NodeID
	hosts := make(map[string]graph.NodeID)
	for _, n := range cfg.Topology.NodesInRegion(cfg.Region) {
		switch n.Kind {
		case graph.KindServer:
			servers = append(servers, n.ID)
		case graph.KindHost:
			tok := n.Label
			if tok == "" {
				tok = fmt.Sprintf("h%d", n.ID)
			}
			hosts[tok] = n.ID
		}
	}
	sys, err := locind.NewSystem(locind.Config{
		Region: cfg.Region, Net: net,
		Servers: servers, Hosts: hosts, Subgroups: cfg.Subgroups,
	})
	if err != nil {
		return nil, err
	}
	s := &LocationSystem{
		Sched: sched, Net: net, Sys: sys,
		agents: make(map[names.Name]*locind.Agent),
	}
	toks := make([]string, 0, len(hosts))
	for tok := range hosts {
		toks = append(toks, tok)
	}
	sort.Strings(toks)
	for _, tok := range toks {
		id := hosts[tok]
		if _, err := sys.AddHost(tok, id); err != nil {
			return nil, err
		}
	}
	for _, tok := range toks {
		id := hosts[tok]
		for _, user := range cfg.UsersPerHost[id] {
			name := names.Name{Region: cfg.Region, Host: tok, User: user}
			if err := name.Validate(); err != nil {
				return nil, err
			}
			a, err := sys.NewAgent(name)
			if err != nil {
				return nil, err
			}
			s.agents[name] = a
		}
	}
	return s, nil
}

// Agent returns a user's agent.
func (s *LocationSystem) Agent(user names.Name) (*locind.Agent, error) {
	a, ok := s.agents[user]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownUser, user)
	}
	return a, nil
}

// Users returns every user, sorted.
func (s *LocationSystem) Users() []names.Name {
	out := make([]names.Name, 0, len(s.agents))
	for u := range s.agents {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Run advances the simulation to quiescence.
func (s *LocationSystem) Run() { s.Sched.Run() }

// RunFor advances the simulation by d.
func (s *LocationSystem) RunFor(d sim.Time) { s.Sched.RunFor(d) }

// MigrateUser moves a user to another host in the region — §3.2.4: "users
// can move freely within a region without changing names. The server
// assignment of the migrated user need not be changed." The agent logs in
// at the new location so servers learn where to alert.
func (s *LocationSystem) MigrateUser(user names.Name, newHost graph.NodeID) error {
	a, ok := s.agents[user]
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownUser, user)
	}
	if err := a.MoveTo(newHost); err != nil {
		return err
	}
	s.migrations++
	return a.Login()
}

// Evaluate harvests the run into a §4 criteria report.
func (s *LocationSystem) Evaluate() evalsys.Report {
	c := evalsys.NewCollector("location-independent")
	st := s.Sys.Stats()
	submitted := st.Get("submissions")
	for i := int64(0); i < submitted; i++ {
		c.CountSubmission(true)
	}
	c.CountDelivered(int(st.Get("deposits")))
	c.CountDuplicates(int(st.Get("duplicate_deposits")))
	c.CountRetries(int(st.Get("deposit_retries")))
	c.CountNotified(int(st.Get("notify_home") + st.Get("notify_roaming") + st.Get("notify_known")))
	for _, a := range s.agents {
		if r := a.Retrievals(); r > 0 {
			// First entry carries the agent's whole poll count; the mean
			// then equals total polls / retrievals.
			c.CountRetrieval(a.Polls())
			for i := 1; i < r; i++ {
				c.CountRetrieval(0)
			}
		}
	}
	for i := int64(0); i < s.migrations; i++ {
		c.CountMigration(0) // intra-region moves never rename
	}
	net := s.Net.Stats()
	c.SetTraffic(net.Get("cost_milli"), net.Get("delivered"))
	c.SetCapabilities(false, true)
	return c.Report()
}
