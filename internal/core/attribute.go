package core

import (
	"errors"
	"fmt"
	"sort"

	"github.com/largemail/largemail/internal/attr"
	"github.com/largemail/largemail/internal/broadcast"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mst"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/sim"
)

// AttributeConfig describes an attribute-based mail system (§3.3): a
// multi-region internetwork whose nodes hold attribute registries, searched
// and mass-mailed over the back-bone MST.
type AttributeConfig struct {
	Topology *graph.Graph
	// Profiles assigns user profiles to the node that is authoritative for
	// them.
	Profiles map[graph.NodeID][]*attr.Profile
	// Distributed selects the GHS construction for the local MSTs.
	Distributed bool
	// Timeout is the convergecast child-timeout base.
	Timeout sim.Time
	Seed    int64
}

// AttributeSystem is a fully wired attribute-based mail system.
type AttributeSystem struct {
	Sched *sim.Scheduler
	Net   *netsim.Network
	// Backbone is the two-level MST structure broadcasts run over.
	Backbone mst.BackboneResult

	tree       *broadcast.Tree
	registries map[graph.NodeID]*attr.Registry
}

// SearchResult is the outcome of one attribute search.
type SearchResult struct {
	Matches []names.Name
	// Unavailable lists nodes whose subtrees timed out; their users may be
	// missing from Matches.
	Unavailable []graph.NodeID
	// NodesSearched counts the registries that evaluated the query.
	NodesSearched int
	// TrafficCost is the edge-weight cost this search added to the network.
	TrafficCost float64
}

// NewAttribute builds the system: computes the back-bone MST, installs an
// attribute registry per node, and wires the broadcast tree.
func NewAttribute(cfg AttributeConfig) (*AttributeSystem, error) {
	if cfg.Topology == nil {
		return nil, errors.New("core: nil topology")
	}
	backbone, err := mst.Backbone(cfg.Topology, cfg.Distributed)
	if err != nil {
		return nil, err
	}
	sched := sim.New(cfg.Seed)
	net := netsim.New(sched, cfg.Topology)
	s := &AttributeSystem{
		Sched:      sched,
		Net:        net,
		Backbone:   backbone,
		registries: make(map[graph.NodeID]*attr.Registry),
	}
	for _, n := range cfg.Topology.Nodes() {
		reg := attr.NewRegistry()
		for _, p := range cfg.Profiles[n.ID] {
			if err := reg.Put(p); err != nil {
				return nil, fmt.Errorf("node %d: %w", n.ID, err)
			}
		}
		s.registries[n.ID] = reg
	}
	tree, err := broadcast.Setup(broadcast.Config{
		Net:     net,
		Tree:    backbone.Combined,
		Timeout: cfg.Timeout,
		Eval: func(id graph.NodeID, query any) []any {
			q, ok := query.(attr.Query)
			if !ok {
				return nil
			}
			users, err := s.registries[id].Search(q)
			if err != nil {
				return nil
			}
			out := make([]any, len(users))
			for i, u := range users {
				out[i] = u
			}
			return out
		},
	})
	if err != nil {
		return nil, err
	}
	s.tree = tree
	return s, nil
}

// Registry returns the attribute registry on a node.
func (s *AttributeSystem) Registry(id graph.NodeID) (*attr.Registry, bool) {
	r, ok := s.registries[id]
	return r, ok
}

// CostTable returns the §3.3.1-B per-region cost-estimation table from the
// perspective of a source region.
func (s *AttributeSystem) CostTable(sourceRegion string) ([]mst.RegionCostRow, error) {
	return s.Backbone.CostTable(sourceRegion)
}

// SelectRegions applies the budget flow control: the per-region estimates a
// sender can afford.
func (s *AttributeSystem) SelectRegions(sourceRegion string, budget float64) (map[string]bool, float64, error) {
	rows, err := s.CostTable(sourceRegion)
	if err != nil {
		return nil, 0, err
	}
	chosen, cost := broadcast.SelectRegions(rows, budget)
	return chosen, cost, nil
}

// Search broadcasts an attribute query from origin over the MST (restricted
// to targets if non-nil), runs the simulation until the convergecast
// completes, and returns the matching users.
func (s *AttributeSystem) Search(origin graph.NodeID, q attr.Query, targets map[string]bool) (SearchResult, error) {
	if err := q.Validate(); err != nil {
		return SearchResult{}, err
	}
	costBefore := s.Net.Stats().Get("cost_milli")
	id, err := s.tree.Start(origin, q, targets)
	if err != nil {
		return SearchResult{}, err
	}
	s.Sched.Run()
	sum, ok := s.tree.Result(id)
	if !ok {
		return SearchResult{}, errors.New("core: search did not complete")
	}
	res := SearchResult{
		Unavailable:   sum.Unavailable,
		NodesSearched: sum.Nodes,
		TrafficCost:   float64(s.Net.Stats().Get("cost_milli")-costBefore) / 1000,
	}
	for _, item := range sum.Items {
		if u, ok := item.(names.Name); ok {
			res.Matches = append(res.Matches, u)
		}
	}
	sort.Slice(res.Matches, func(i, j int) bool {
		return res.Matches[i].String() < res.Matches[j].String()
	})
	return res, nil
}

// FloodSearch is the naive baseline: the query is unicast from origin to
// every node and each node unicasts its matches straight back. Same answer,
// more traffic — the comparison behind experiment E4.
func (s *AttributeSystem) FloodSearch(origin graph.NodeID, q attr.Query) (SearchResult, error) {
	if err := q.Validate(); err != nil {
		return SearchResult{}, err
	}
	costBefore := s.Net.Stats().Get("cost_milli")
	res := SearchResult{}
	ids := s.Net.Topology().NodeIDs()
	var matches []names.Name
	for _, id := range ids {
		users, err := s.registries[id].Search(q)
		if err != nil {
			continue
		}
		res.NodesSearched++
		matches = append(matches, users...)
		if id == origin {
			continue
		}
		// Account the query out and the response back.
		if c, err := s.Net.Cost(origin, id); err == nil {
			s.Net.Stats().Add("cost_milli", int64(2*c*1000))
			s.Net.Stats().Add("delivered", 2)
		}
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i].String() < matches[j].String() })
	res.Matches = matches
	res.TrafficCost = float64(s.Net.Stats().Get("cost_milli")-costBefore) / 1000
	return res, nil
}

// MassMail performs the §3.3 mass-distribution flow: search for recipients
// under the budget's region selection, then charge one tree traversal for
// distributing the message to the selected regions. It returns the search
// result and the estimated distribution cost.
func (s *AttributeSystem) MassMail(origin graph.NodeID, originRegion string, q attr.Query, budget float64) (SearchResult, float64, error) {
	targets, estimate, err := s.SelectRegions(originRegion, budget)
	if err != nil {
		return SearchResult{}, 0, err
	}
	if len(targets) == 0 {
		return SearchResult{}, 0, fmt.Errorf("core: budget %v affords no region", budget)
	}
	res, err := s.Search(origin, q, targets)
	if err != nil {
		return SearchResult{}, 0, err
	}
	return res, estimate, nil
}
