package core

import (
	"errors"
	"fmt"
	"sort"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/locind"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/sim"
)

// FederationConfig describes a multi-region location-independent world
// (§3.2 complete with the inter-region forwarding of §3.2.2b). Regions,
// hosts and servers are discovered from the topology's node tags.
type FederationConfig struct {
	Topology *graph.Graph
	// UsersPerHost lists the user tokens whose primary location is each
	// host node.
	UsersPerHost map[graph.NodeID][]string
	// Subgroups is the per-region hash modulus (0 = 2× server count).
	Subgroups int
	Seed      int64
}

// LocationFederation is a set of federated location-independent regional
// systems on one simulated network.
type LocationFederation struct {
	Sched *sim.Scheduler
	Net   *netsim.Network
	Fed   *locind.Federation

	systems map[string]*locind.System
	agents  map[names.Name]*locind.Agent
}

// NewLocationFederation builds one locind.System per region in the topology
// and federates them.
func NewLocationFederation(cfg FederationConfig) (*LocationFederation, error) {
	if cfg.Topology == nil {
		return nil, errors.New("core: nil topology")
	}
	sched := sim.New(cfg.Seed)
	net := netsim.New(sched, cfg.Topology)
	f := &LocationFederation{
		Sched: sched, Net: net, Fed: locind.NewFederation(),
		systems: make(map[string]*locind.System),
		agents:  make(map[names.Name]*locind.Agent),
	}
	regions := cfg.Topology.Regions()
	sort.Strings(regions)
	type hostEntry struct {
		tok string
		id  graph.NodeID
	}
	regionHosts := make(map[string][]hostEntry)
	for _, region := range regions {
		var servers []graph.NodeID
		for _, n := range cfg.Topology.NodesInRegion(region) {
			switch n.Kind {
			case graph.KindServer:
				servers = append(servers, n.ID)
			case graph.KindHost:
				tok := n.Label
				if tok == "" {
					tok = fmt.Sprintf("h%d", n.ID)
				}
				regionHosts[region] = append(regionHosts[region], hostEntry{tok, n.ID})
			}
		}
		if len(servers) == 0 {
			continue // region without mail service (routers only)
		}
		sys, err := locind.NewSystem(locind.Config{
			Region: region, Net: net, Servers: servers, Subgroups: cfg.Subgroups,
		})
		if err != nil {
			return nil, fmt.Errorf("region %s: %w", region, err)
		}
		if err := f.Fed.Add(sys); err != nil {
			return nil, err
		}
		f.systems[region] = sys
	}
	if len(f.systems) == 0 {
		return nil, errors.New("core: no regions with servers")
	}
	for region, sys := range f.systems {
		entries := regionHosts[region]
		sort.Slice(entries, func(i, j int) bool { return entries[i].tok < entries[j].tok })
		for _, h := range entries {
			if _, err := sys.AddHost(h.tok, h.id); err != nil {
				return nil, err
			}
		}
		for _, h := range entries {
			for _, user := range cfg.UsersPerHost[h.id] {
				name := names.Name{Region: region, Host: h.tok, User: user}
				if err := name.Validate(); err != nil {
					return nil, err
				}
				a, err := sys.NewAgent(name)
				if err != nil {
					return nil, err
				}
				f.agents[name] = a
			}
		}
	}
	return f, nil
}

// Agent returns a user's agent, wherever their region is.
func (f *LocationFederation) Agent(user names.Name) (*locind.Agent, error) {
	a, ok := f.agents[user]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownUser, user)
	}
	return a, nil
}

// System returns one region's system.
func (f *LocationFederation) System(region string) (*locind.System, bool) {
	s, ok := f.systems[region]
	return s, ok
}

// Users returns every user, sorted.
func (f *LocationFederation) Users() []names.Name {
	out := make([]names.Name, 0, len(f.agents))
	for u := range f.agents {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Run advances the simulation to quiescence.
func (f *LocationFederation) Run() { f.Sched.Run() }

// RunFor advances the simulation by d.
func (f *LocationFederation) RunFor(d sim.Time) { f.Sched.RunFor(d) }
