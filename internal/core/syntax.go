// Package core assembles the paper's three mail-system designs into
// ready-to-run systems: SyntaxSystem (§3.1, syntax-directed naming with
// load-balanced server assignment), LocationSystem (§3.2, limited
// location-independent access), and AttributeSystem (§3.3, attribute-based
// naming over a back-bone MST). It is the library's primary entry point:
// examples, experiments and benchmarks all build worlds through it.
package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"

	"github.com/largemail/largemail/internal/assign"
	"github.com/largemail/largemail/internal/client"
	"github.com/largemail/largemail/internal/evalsys"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/mail/mailstore"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/obs"
	"github.com/largemail/largemail/internal/server"
	"github.com/largemail/largemail/internal/sim"
)

// Errors reported by core systems.
var (
	ErrUnknownUser = errors.New("core: unknown user")
	ErrUnknownNode = errors.New("core: unknown node")
	ErrNotAHost    = errors.New("core: node is not a host")
)

// SyntaxConfig describes a syntax-directed world. Hosts and servers are
// discovered from the topology's node kinds and regions; user names are
// region.<host label>.<token>.
type SyntaxConfig struct {
	Topology *graph.Graph
	// UsersPerHost lists the user tokens homed on each host node.
	UsersPerHost map[graph.NodeID][]string
	// AuthorityLen is the authority-list length per user (default 2,
	// clamped to the region's server count).
	AuthorityLen int
	// MaxLoad is the per-server capacity M_j; zero derives a capacity that
	// fits the population with ~25% headroom.
	MaxLoad int
	// Retention is each server's mailbox clean-up policy.
	Retention mail.Retention
	// Seed drives the simulation's deterministic randomness.
	Seed int64
	// DataDir, when set, makes every server's mailbox store durable: server
	// node N journals to DataDir/s<N>, and rebuilding the system over the
	// same directory recovers all buffered mail by WAL replay.
	DataDir string
	// Fsync is the WAL fsync policy when DataDir is set.
	Fsync mailstore.FsyncMode
}

// SyntaxSystem is a fully wired syntax-directed mail system (§3.1).
type SyntaxSystem struct {
	Sched *sim.Scheduler
	Net   *netsim.Network

	cfg       SyntaxConfig
	assigns   map[string]*assign.Assignment
	dirs      map[string]*server.Directory
	regionMap *server.RegionMap
	servers   map[graph.NodeID]*server.Server
	hosts     map[graph.NodeID]*client.Host
	agents    map[names.Name]*client.Agent

	hostToken  map[graph.NodeID]string
	renames    int64
	migrations int64
	reconfigs  int64

	reg   *obs.Registry
	trace *obs.Tracer
}

// NewSyntax builds the system: per region it runs the §3.1.1 assignment
// algorithm to derive authority lists, creates directories and servers, and
// attaches one agent per user.
func NewSyntax(cfg SyntaxConfig) (*SyntaxSystem, error) {
	if cfg.Topology == nil {
		return nil, errors.New("core: nil topology")
	}
	if cfg.AuthorityLen <= 0 {
		cfg.AuthorityLen = 2
	}
	sched := sim.New(cfg.Seed)
	reg := obs.NewRegistry()
	s := &SyntaxSystem{
		Sched:     sched,
		reg:       reg,
		trace:     obs.NewTracer(func() int64 { return int64(sched.Now()) }, reg),
		cfg:       cfg,
		assigns:   make(map[string]*assign.Assignment),
		dirs:      make(map[string]*server.Directory),
		regionMap: server.NewRegionMap(),
		servers:   make(map[graph.NodeID]*server.Server),
		hosts:     make(map[graph.NodeID]*client.Host),
		agents:    make(map[names.Name]*client.Agent),
		hostToken: make(map[graph.NodeID]string),
	}
	s.Net = netsim.New(s.Sched, cfg.Topology)

	// Partition nodes by region and kind.
	regionHosts := make(map[string][]graph.NodeID)
	regionServers := make(map[string][]graph.NodeID)
	for _, n := range cfg.Topology.Nodes() {
		switch n.Kind {
		case graph.KindHost:
			regionHosts[n.Region] = append(regionHosts[n.Region], n.ID)
			tok := n.Label
			if tok == "" {
				tok = fmt.Sprintf("h%d", n.ID)
			}
			s.hostToken[n.ID] = tok
		case graph.KindServer:
			regionServers[n.Region] = append(regionServers[n.Region], n.ID)
		}
	}
	regions := make([]string, 0, len(regionServers))
	for r := range regionServers {
		regions = append(regions, r)
	}
	sort.Strings(regions)

	commW, procW, procTime := assign.PaperWeights()
	for _, region := range regions {
		hosts := regionHosts[region]
		servers := regionServers[region]
		if len(hosts) == 0 {
			return nil, fmt.Errorf("core: region %s has servers but no hosts", region)
		}
		users := make(map[graph.NodeID]int, len(hosts))
		total := 0
		for _, h := range hosts {
			users[h] = len(cfg.UsersPerHost[h])
			total += users[h]
		}
		maxLoad := make(map[graph.NodeID]int, len(servers))
		cap := cfg.MaxLoad
		if cap <= 0 {
			cap = total/len(servers) + total/(4*len(servers)) + 4
		}
		for _, sv := range servers {
			maxLoad[sv] = cap
		}
		a, err := assign.New(assign.Config{
			Topology: cfg.Topology,
			Hosts:    hosts, Servers: servers,
			Users: users, MaxLoad: maxLoad,
			ProcTime: procTime, CommW: commW, ProcW: procW,
		})
		if err != nil {
			return nil, fmt.Errorf("region %s: %w", region, err)
		}
		a.Run()
		s.assigns[region] = a

		dir := server.NewDirectory(region)
		s.dirs[region] = dir
		for _, sv := range servers {
			srv, err := server.New(server.Config{
				ID: sv, Region: region, Net: s.Net,
				Dir: dir, Regions: s.regionMap, Retention: cfg.Retention,
				Trace: s.trace,
				DataDir: s.serverDataDir(sv), Fsync: cfg.Fsync,
			})
			if err != nil {
				return nil, err
			}
			s.servers[sv] = srv
		}
		lists := a.AuthorityLists(cfg.AuthorityLen)
		for _, h := range hosts {
			host, err := client.NewHost(s.Net, h)
			if err != nil {
				return nil, err
			}
			s.hosts[h] = host
			for _, tok := range cfg.UsersPerHost[h] {
				name := names.Name{Region: region, Host: s.hostToken[h], User: tok}
				if err := name.Validate(); err != nil {
					return nil, err
				}
				if err := dir.SetAuthority(name, lists[h]); err != nil {
					return nil, err
				}
				agent, err := client.NewAgent(name, host, s.lookupServer, lists[h])
				if err != nil {
					return nil, err
				}
				s.agents[name] = agent
			}
		}
	}
	return s, nil
}

func (s *SyntaxSystem) lookupServer(id graph.NodeID) *server.Server { return s.servers[id] }

// serverDataDir returns the durable store directory for a server node, or
// "" (memory store) when the system is not configured for durability.
func (s *SyntaxSystem) serverDataDir(id graph.NodeID) string {
	if s.cfg.DataDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.DataDir, fmt.Sprintf("s%d", id))
}

// Close syncs and closes every server's durable store (no-op for memory
// stores).
func (s *SyntaxSystem) Close() error {
	var first error
	for _, srv := range s.servers {
		if err := srv.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Obs returns the deployment-wide instrument registry holding the tracer-fed
// "lat_<stage>" and "lat_e2e" histograms (in microticks; divide by sim.Unit
// for paper time units).
func (s *SyntaxSystem) Obs() *obs.Registry { return s.reg }

// Tracer returns the deployment-wide message-lifecycle tracer shared by
// every server, running on the simulated clock.
func (s *SyntaxSystem) Tracer() *obs.Tracer { return s.trace }

// Agent returns the user's mail agent.
func (s *SyntaxSystem) Agent(user names.Name) (*client.Agent, error) {
	a, ok := s.agents[user]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownUser, user)
	}
	return a, nil
}

// Users returns every user, sorted by name.
func (s *SyntaxSystem) Users() []names.Name {
	out := make([]names.Name, 0, len(s.agents))
	for u := range s.agents {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Servers returns every server node, sorted.
func (s *SyntaxSystem) Servers() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(s.servers))
	for id := range s.servers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Server returns the server process on a node.
func (s *SyntaxSystem) Server(id graph.NodeID) (*server.Server, bool) {
	srv, ok := s.servers[id]
	return srv, ok
}

// Hosts returns every host process, sorted by node ID. Hosts collect the
// submission acks, which is how callers learn which submissions the system
// has durably accepted.
func (s *SyntaxSystem) Hosts() []*client.Host {
	out := make([]*client.Host, 0, len(s.hosts))
	for _, h := range s.hosts {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// Assignment returns a region's load-balanced assignment.
func (s *SyntaxSystem) Assignment(region string) (*assign.Assignment, bool) {
	a, ok := s.assigns[region]
	return a, ok
}

// Directory returns a region's directory.
func (s *SyntaxSystem) Directory(region string) (*server.Directory, bool) {
	d, ok := s.dirs[region]
	return d, ok
}

// Send submits a message from one user. The simulation must be advanced
// (Run/RunFor) for delivery to happen.
func (s *SyntaxSystem) Send(from names.Name, to []names.Name, subject, body string) error {
	a, err := s.Agent(from)
	if err != nil {
		return err
	}
	_, err = a.Send(to, subject, body)
	return err
}

// Run advances the simulation to quiescence.
func (s *SyntaxSystem) Run() { s.Sched.Run() }

// RunFor advances the simulation by d.
func (s *SyntaxSystem) RunFor(d sim.Time) { s.Sched.RunFor(d) }

// MigrateUser moves a user to a new host, possibly in another region,
// following §3.1.4: the user gets a new location-dependent name, is added at
// the new location, deleted at the old one, and a redirect forwards mail
// sent to the old name. It returns the new name.
func (s *SyntaxSystem) MigrateUser(old names.Name, newHost graph.NodeID) (names.Name, error) {
	agent, ok := s.agents[old]
	if !ok {
		return names.Name{}, fmt.Errorf("%w: %v", ErrUnknownUser, old)
	}
	node, ok := s.cfg.Topology.Node(newHost)
	if !ok {
		return names.Name{}, fmt.Errorf("%w: %d", ErrUnknownNode, newHost)
	}
	if node.Kind != graph.KindHost {
		return names.Name{}, fmt.Errorf("%w: %d", ErrNotAHost, newHost)
	}
	host, ok := s.hosts[newHost]
	if !ok {
		return names.Name{}, fmt.Errorf("%w: host %d not wired", ErrUnknownNode, newHost)
	}
	newName := old.Rename(node.Region, s.hostToken[newHost])
	if _, exists := s.agents[newName]; exists {
		return names.Name{}, fmt.Errorf("core: %v already exists at destination", newName)
	}

	// Drain mail buffered under the old name before the handover.
	agent.GetMail()

	// Add at the new location (rebalancing the destination region).
	newAssign := s.assigns[node.Region]
	if _, err := newAssign.AddUsers(newHost, 1); err != nil {
		return names.Name{}, err
	}
	newList := newAssign.AuthorityLists(s.cfg.AuthorityLen)[newHost]
	if err := s.dirs[node.Region].SetAuthority(newName, newList); err != nil {
		return names.Name{}, err
	}
	newAgent, err := client.NewAgent(newName, host, s.lookupServer, newList)
	if err != nil {
		return names.Name{}, err
	}
	// Carry the drained inbox conceptually: the paper moves the user, not
	// the mailbox; retrieved mail stays with the user interface.
	s.agents[newName] = newAgent

	// Delete at the old location and install the redirect.
	oldRegion := old.Region
	if a, ok := s.assigns[oldRegion]; ok {
		if oldHostNode, ok2 := s.hostNodeByToken(oldRegion, old.Host); ok2 {
			if _, err := a.RemoveUsers(oldHostNode, 1); err != nil {
				return names.Name{}, err
			}
		}
	}
	if err := s.dirs[oldRegion].SetAuthority(old, nil); err != nil {
		return names.Name{}, err
	}
	if err := s.dirs[oldRegion].SetRedirect(old, newName); err != nil {
		return names.Name{}, err
	}
	delete(s.agents, old)
	s.migrations++
	s.renames++ // syntax-directed migration always renames
	return newName, nil
}

func (s *SyntaxSystem) hostNodeByToken(region, token string) (graph.NodeID, bool) {
	for id, tok := range s.hostToken {
		if tok != token {
			continue
		}
		if n, ok := s.cfg.Topology.Node(id); ok && n.Region == region {
			return id, true
		}
	}
	return 0, false
}

// AddServer wires a new server node into a region (§3.1.3c): the assignment
// rebalances onto it and every affected user's authority list is refreshed
// in the directory and the live agents.
func (s *SyntaxSystem) AddServer(id graph.NodeID, region string, maxLoad int) error {
	if _, dup := s.servers[id]; dup {
		return fmt.Errorf("core: server %d already present", id)
	}
	a, ok := s.assigns[region]
	if !ok {
		return fmt.Errorf("core: unknown region %s", region)
	}
	srv, err := server.New(server.Config{
		ID: id, Region: region, Net: s.Net,
		Dir: s.dirs[region], Regions: s.regionMap, Retention: s.cfg.Retention,
		Trace: s.trace,
		DataDir: s.serverDataDir(id), Fsync: s.cfg.Fsync,
	})
	if err != nil {
		return err
	}
	s.servers[id] = srv
	if _, err := a.AddServer(id, maxLoad); err != nil {
		return err
	}
	return s.refreshAuthority(region)
}

// refreshAuthority pushes recomputed authority lists to the directory and
// agents of a region, counting the updates as reconfiguration traffic.
func (s *SyntaxSystem) refreshAuthority(region string) error {
	a := s.assigns[region]
	lists := a.AuthorityLists(s.cfg.AuthorityLen)
	for name, agent := range s.agents {
		if name.Region != region {
			continue
		}
		hostNode, ok := s.hostNodeByToken(region, name.Host)
		if !ok {
			continue
		}
		list := lists[hostNode]
		if len(list) == 0 {
			continue
		}
		if err := s.dirs[region].SetAuthority(name, list); err != nil {
			return err
		}
		if err := agent.SetAuthority(list); err != nil {
			return err
		}
		s.reconfigs++
	}
	return nil
}

// Evaluate harvests the run into a §4 criteria report.
func (s *SyntaxSystem) Evaluate() evalsys.Report {
	c := evalsys.NewCollector("syntax-directed")
	for _, a := range s.agents {
		st := a.Stats()
		if st.Retrievals > 0 {
			// First entry carries the agent's whole poll count, the rest
			// zero: the collector's mean is then total polls / retrievals.
			c.CountRetrieval(st.Polls)
			for i := 1; i < st.Retrievals; i++ {
				c.CountRetrieval(0)
			}
		}
	}
	var submitted, delivered, duplicates, retries, evicted, notifies, storage int64
	for _, srv := range s.servers {
		st := srv.Stats()
		submitted += st.Get("submissions")
		delivered += st.Get("deposits_local")
		duplicates += st.Get("duplicate_deposits")
		retries += st.Get("retries")
		evicted += st.Get("cleanup_evicted")
		notifies += st.Get("notifies")
		storage += int64(srv.StoredBytes())
	}
	for i := int64(0); i < submitted; i++ {
		c.CountSubmission(true)
	}
	c.CountDelivered(int(delivered))
	c.CountDuplicates(int(duplicates))
	c.CountRetries(int(retries))
	c.CountEvicted(int(evicted))
	c.CountNotified(int(notifies))
	for i := int64(0); i < s.migrations; i++ {
		c.CountMigration(1) // syntax-directed migration always renames
	}
	c.CountReconfigMessages(s.reconfigs)
	// Response time (§4.4) comes straight from the lifecycle traces:
	// submission → retrieval per message, on the simulated clock.
	for _, id := range s.trace.IDs() {
		tr, _ := s.trace.Trace(id)
		sub, okS := tr.StageAt(obs.StageSubmit)
		ret, okR := tr.StageAt(obs.StageRetrieve)
		if okS && okR {
			c.ObserveResponse(sim.Time(ret - sub))
		}
	}
	net := s.Net.Stats()
	c.SetTraffic(net.Get("cost_milli"), net.Get("delivered"))
	c.SetStorage(storage)
	c.SetCapabilities(false, false)
	return c.Report()
}
