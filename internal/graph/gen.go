package graph

import (
	"fmt"
	"math/rand"
)

// Example bundles a topology with the mail-system roles and user population
// that the paper's worked examples attach to it.
type Example struct {
	G       *Graph
	Hosts   []NodeID       // host nodes, in presentation order (H1, H2, ...)
	Servers []NodeID       // server nodes, in presentation order (S1, S2, ...)
	Users   map[NodeID]int // users homed on each host (N_i in §3.1.1)
}

// TotalUsers reports the user population of the example.
func (e Example) TotalUsers() int {
	total := 0
	for _, n := range e.Users {
		total += n
	}
	return total
}

// Node IDs used by the paper-example generators. Hosts are numbered from
// HostBase+1, servers from ServerBase+1, so H2 is HostBase+2 and S3 is
// ServerBase+3.
const (
	HostBase   NodeID = 0
	ServerBase NodeID = 100
)

// Figure1 reconstructs the topology and user distribution of the paper's
// Figure 1 (§3.1.1): servers S1, S2, S3 in one region, hosts H1..H6, every
// link with an average communication time of one time unit. The figure
// itself is a scan-degraded drawing; this reconstruction preserves every
// constraint the prose states:
//
//   - all links cost 1 unit;
//   - the shortest one-way path H2→S1 is 2 units (so H2 reaches S1 through
//     another node);
//   - the nearest-server initialization of Table 1 assigns H1,H3→S1,
//     H2,H4,H5→S2, H6→S3 with loads 50/60/50/50/40/20.
func Figure1() Example {
	g := New()
	const region = "R1"
	users := map[NodeID]int{
		HostBase + 1: 50,
		HostBase + 2: 60,
		HostBase + 3: 50,
		HostBase + 4: 50,
		HostBase + 5: 40,
		HostBase + 6: 20,
	}
	var hosts []NodeID
	for i := 1; i <= 6; i++ {
		id := HostBase + NodeID(i)
		g.MustAddNode(Node{ID: id, Label: fmt.Sprintf("H%d", i), Region: region, Kind: KindHost})
		hosts = append(hosts, id)
	}
	var servers []NodeID
	for j := 1; j <= 3; j++ {
		id := ServerBase + NodeID(j)
		g.MustAddNode(Node{ID: id, Label: fmt.Sprintf("S%d", j), Region: region, Kind: KindServer})
		servers = append(servers, id)
	}
	s1, s2, s3 := servers[0], servers[1], servers[2]
	// Hosts attach to their nearest server; servers form a chain, so H2's
	// shortest path to S1 is H2-S2-S1 = 2 units as the prose requires.
	g.MustAddEdge(hosts[0], s1, 1)
	g.MustAddEdge(hosts[2], s1, 1)
	g.MustAddEdge(hosts[1], s2, 1)
	g.MustAddEdge(hosts[3], s2, 1)
	g.MustAddEdge(hosts[4], s2, 1)
	g.MustAddEdge(hosts[5], s3, 1)
	g.MustAddEdge(s1, s2, 1)
	g.MustAddEdge(s2, s3, 1)
	return Example{G: g, Hosts: hosts, Servers: servers, Users: users}
}

// Table3Variant reconstructs the skewed scenario of the paper's Table 3:
// three hosts with 100, 100 and 20 users, each adjacent to its own server
// (H1→S1, H2→S2, H3→S3), servers chained with unit links.
func Table3Variant() Example {
	g := New()
	const region = "R1"
	users := map[NodeID]int{
		HostBase + 1: 100,
		HostBase + 2: 100,
		HostBase + 3: 20,
	}
	var hosts, servers []NodeID
	for i := 1; i <= 3; i++ {
		h := HostBase + NodeID(i)
		s := ServerBase + NodeID(i)
		g.MustAddNode(Node{ID: h, Label: fmt.Sprintf("H%d", i), Region: region, Kind: KindHost})
		g.MustAddNode(Node{ID: s, Label: fmt.Sprintf("S%d", i), Region: region, Kind: KindServer})
		hosts = append(hosts, h)
		servers = append(servers, s)
	}
	for i := 0; i < 3; i++ {
		g.MustAddEdge(hosts[i], servers[i], 1)
	}
	g.MustAddEdge(servers[0], servers[1], 1)
	g.MustAddEdge(servers[1], servers[2], 1)
	return Example{G: g, Hosts: hosts, Servers: servers, Users: users}
}

// RandomConnected generates a connected graph with n nodes: a random
// spanning tree plus extra random edges. Edge weights are distinct (a random
// permutation of 1..numEdges scaled by weightScale), which the distributed
// GHS MST algorithm requires for the MST to be unique [GAL83].
func RandomConnected(rng *rand.Rand, n, extraEdges int, weightScale float64) *Graph {
	if n <= 0 {
		return New()
	}
	if weightScale <= 0 {
		weightScale = 1
	}
	g := New()
	for i := 0; i < n; i++ {
		g.MustAddNode(Node{ID: NodeID(i), Label: fmt.Sprintf("n%d", i), Kind: KindRouter})
	}
	type pair struct{ a, b NodeID }
	var chosen []pair
	seen := make(map[pair]bool)
	addPair := func(a, b NodeID) bool {
		if a == b {
			return false
		}
		if a > b {
			a, b = b, a
		}
		p := pair{a, b}
		if seen[p] {
			return false
		}
		seen[p] = true
		chosen = append(chosen, p)
		return true
	}
	// Random spanning tree: attach each new node to a uniformly random
	// earlier node.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		a := NodeID(perm[i])
		b := NodeID(perm[rng.Intn(i)])
		addPair(a, b)
	}
	maxExtra := n*(n-1)/2 - (n - 1)
	if extraEdges > maxExtra {
		extraEdges = maxExtra
	}
	for added := 0; added < extraEdges; {
		a := NodeID(rng.Intn(n))
		b := NodeID(rng.Intn(n))
		if addPair(a, b) {
			added++
		}
	}
	// Distinct weights: a shuffled 1..m ramp.
	weights := rng.Perm(len(chosen))
	for i, p := range chosen {
		g.MustAddEdge(p.a, p.b, float64(weights[i]+1)*weightScale)
	}
	return g
}

// MultiRegionSpec configures MultiRegion.
type MultiRegionSpec struct {
	Regions        int // number of regions (≥ 1)
	NodesPerRegion int // nodes inside each region (≥ 1)
	ExtraIntra     int // extra intra-region edges beyond the spanning tree
	InterLinks     int // inter-region links per adjacent region pair (≥ 1)
	WeightScale    float64
}

// MultiRegion generates the internetwork shape of Figure 2: several regions,
// each internally connected, joined by inter-region links between border
// nodes. Region r gets nodes labelled "R<r>/n<i>" with region tag "R<r>".
// Regions are joined in a ring (plus the requested extra inter-links),
// so the whole graph is connected. All edge weights are distinct.
func MultiRegion(rng *rand.Rand, spec MultiRegionSpec) *Graph {
	if spec.Regions < 1 || spec.NodesPerRegion < 1 {
		return New()
	}
	if spec.InterLinks < 1 {
		spec.InterLinks = 1
	}
	if spec.WeightScale <= 0 {
		spec.WeightScale = 1
	}
	g := New()
	nodeID := func(region, i int) NodeID {
		return NodeID(region*1000 + i)
	}
	for r := 0; r < spec.Regions; r++ {
		regionName := fmt.Sprintf("R%d", r+1)
		for i := 0; i < spec.NodesPerRegion; i++ {
			g.MustAddNode(Node{
				ID:     nodeID(r, i),
				Label:  fmt.Sprintf("%s/n%d", regionName, i),
				Region: regionName,
				Kind:   KindRouter,
			})
		}
	}
	type pair struct{ a, b NodeID }
	var chosen []pair
	seen := make(map[pair]bool)
	addPair := func(a, b NodeID) bool {
		if a == b {
			return false
		}
		if a > b {
			a, b = b, a
		}
		p := pair{a, b}
		if seen[p] {
			return false
		}
		seen[p] = true
		chosen = append(chosen, p)
		return true
	}
	for r := 0; r < spec.Regions; r++ {
		// Intra-region random spanning tree.
		perm := rng.Perm(spec.NodesPerRegion)
		for i := 1; i < spec.NodesPerRegion; i++ {
			addPair(nodeID(r, perm[i]), nodeID(r, perm[rng.Intn(i)]))
		}
		n := spec.NodesPerRegion
		maxExtra := n*(n-1)/2 - (n - 1)
		extra := spec.ExtraIntra
		if extra > maxExtra {
			extra = maxExtra
		}
		for added := 0; added < extra; {
			if addPair(nodeID(r, rng.Intn(n)), nodeID(r, rng.Intn(n))) {
				added++
			}
		}
	}
	if spec.Regions > 1 {
		for r := 0; r < spec.Regions; r++ {
			next := (r + 1) % spec.Regions
			if spec.Regions == 2 && r == 1 {
				break // avoid doubling the single pair in a 2-region ring
			}
			for added := 0; added < spec.InterLinks; {
				a := nodeID(r, rng.Intn(spec.NodesPerRegion))
				b := nodeID(next, rng.Intn(spec.NodesPerRegion))
				if addPair(a, b) {
					added++
				}
			}
		}
	}
	weights := rng.Perm(len(chosen))
	for i, p := range chosen {
		g.MustAddEdge(p.a, p.b, float64(weights[i]+1)*spec.WeightScale)
	}
	return g
}

// Grid generates a rows×cols grid with unit weights plus a small
// deterministic weight perturbation so all weights are distinct.
func Grid(rows, cols int) *Graph {
	g := New()
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.MustAddNode(Node{ID: id(r, c), Label: fmt.Sprintf("g%d_%d", r, c), Kind: KindRouter})
		}
	}
	eps := 0
	add := func(a, b NodeID) {
		eps++
		g.MustAddEdge(a, b, 1+float64(eps)/1e6)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				add(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				add(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}
