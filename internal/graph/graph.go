// Package graph models the internetwork topologies the mail systems run on.
//
// The paper assumes "the networks on which the mail system is built form a
// connected undirected graph with computers (i.e., hosts, servers,
// mail-forwarders, etc.) as nodes and the communication links as the edges.
// Each edge is assigned a finite weight cost" (§3.3.1-A). This package
// provides that model plus the centralized algorithms the designs rely on:
// Dijkstra shortest paths (the "shortest-path zero-load algorithm" used to
// initialize connection costs in §3.1.1) and Kruskal/Prim minimum-weight
// spanning trees (the correctness baseline for the distributed GHS MST in
// internal/mst).
package graph

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// NodeID identifies a node within one Graph.
type NodeID int

// Kind classifies what a node represents in a mail-system topology.
type Kind int

// Node kinds. Routers only forward traffic; hosts run users; servers run
// mail (authority) servers.
const (
	KindRouter Kind = iota + 1
	KindHost
	KindServer
)

func (k Kind) String() string {
	switch k {
	case KindRouter:
		return "router"
	case KindHost:
		return "host"
	case KindServer:
		return "server"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Node is a computer in the internetwork.
type Node struct {
	ID     NodeID
	Label  string
	Region string
	Kind   Kind
}

// Edge is an undirected weighted link. Invariant: A < B.
type Edge struct {
	A, B   NodeID
	Weight float64
}

func normEdge(a, b NodeID, w float64) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{A: a, B: b, Weight: w}
}

// Errors reported by Graph mutations and queries.
var (
	ErrNodeExists    = errors.New("graph: node already exists")
	ErrNodeNotFound  = errors.New("graph: node not found")
	ErrSelfLoop      = errors.New("graph: self loop")
	ErrBadWeight     = errors.New("graph: edge weight must be positive and finite")
	ErrDisconnected  = errors.New("graph: graph is not connected")
	ErrEdgeNotFound  = errors.New("graph: edge not found")
	ErrDuplicateEdge = errors.New("graph: edge already exists")
)

// Graph is a weighted undirected graph. The zero value is not usable; create
// with New. Graph is not safe for concurrent mutation, but concurrent
// read-only use (queries and the algorithms below) is safe.
type Graph struct {
	nodes map[NodeID]Node
	adj   map[NodeID]map[NodeID]float64

	mu     sync.Mutex // guards frozen
	frozen *Frozen    // cached indexed view; nil until built, reset on mutation
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[NodeID]Node),
		adj:   make(map[NodeID]map[NodeID]float64),
	}
}

// AddNode inserts n. It fails if a node with the same ID exists.
func (g *Graph) AddNode(n Node) error {
	if _, ok := g.nodes[n.ID]; ok {
		return fmt.Errorf("%w: %d", ErrNodeExists, n.ID)
	}
	g.nodes[n.ID] = n
	g.adj[n.ID] = make(map[NodeID]float64)
	g.invalidate()
	return nil
}

// MustAddNode is AddNode for static topology construction; it panics on error.
func (g *Graph) MustAddNode(n Node) {
	if err := g.AddNode(n); err != nil {
		panic(err)
	}
}

// AddEdge inserts an undirected edge between a and b with weight w.
func (g *Graph) AddEdge(a, b NodeID, w float64) error {
	if a == b {
		return fmt.Errorf("%w: %d", ErrSelfLoop, a)
	}
	if w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
		return fmt.Errorf("%w: %v", ErrBadWeight, w)
	}
	if _, ok := g.nodes[a]; !ok {
		return fmt.Errorf("%w: %d", ErrNodeNotFound, a)
	}
	if _, ok := g.nodes[b]; !ok {
		return fmt.Errorf("%w: %d", ErrNodeNotFound, b)
	}
	if _, ok := g.adj[a][b]; ok {
		return fmt.Errorf("%w: %d-%d", ErrDuplicateEdge, a, b)
	}
	g.adj[a][b] = w
	g.adj[b][a] = w
	g.invalidate()
	return nil
}

// MustAddEdge is AddEdge for static topology construction; it panics on error.
func (g *Graph) MustAddEdge(a, b NodeID, w float64) {
	if err := g.AddEdge(a, b, w); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes the edge between a and b.
func (g *Graph) RemoveEdge(a, b NodeID) error {
	if _, ok := g.adj[a][b]; !ok {
		return fmt.Errorf("%w: %d-%d", ErrEdgeNotFound, a, b)
	}
	delete(g.adj[a], b)
	delete(g.adj[b], a)
	g.invalidate()
	return nil
}

// RemoveNode deletes a node and all its incident edges.
func (g *Graph) RemoveNode(id NodeID) error {
	if _, ok := g.nodes[id]; !ok {
		return fmt.Errorf("%w: %d", ErrNodeNotFound, id)
	}
	for nb := range g.adj[id] {
		delete(g.adj[nb], id)
	}
	delete(g.adj, id)
	delete(g.nodes, id)
	g.invalidate()
	return nil
}

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) (Node, bool) {
	n, ok := g.nodes[id]
	return n, ok
}

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges reports the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, nbs := range g.adj {
		total += len(nbs)
	}
	return total / 2
}

// Nodes returns all nodes sorted by ID.
func (g *Graph) Nodes() []Node {
	out := make([]Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NodeIDs returns all node IDs sorted ascending.
func (g *Graph) NodeIDs() []NodeID {
	out := make([]NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges returns all undirected edges sorted by (A, B). The sort is computed
// once per topology on the frozen view; each call returns a fresh copy the
// caller may mutate.
func (g *Graph) Edges() []Edge {
	cached := g.Frozen().Edges()
	out := make([]Edge, len(cached))
	copy(out, cached)
	return out
}

// Neighbors returns the IDs adjacent to id, sorted ascending.
func (g *Graph) Neighbors(id NodeID) []NodeID {
	nbs := g.adj[id]
	out := make([]NodeID, 0, len(nbs))
	for nb := range nbs {
		out = append(out, nb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Weight reports the weight of the edge between a and b.
func (g *Graph) Weight(a, b NodeID) (float64, bool) {
	w, ok := g.adj[a][b]
	return w, ok
}

// NodesInRegion returns the nodes tagged with region, sorted by ID.
func (g *Graph) NodesInRegion(region string) []Node {
	var out []Node
	for _, n := range g.nodes {
		if n.Region == region {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Regions returns the distinct region tags present, sorted.
func (g *Graph) Regions() []string {
	set := make(map[string]bool)
	for _, n := range g.nodes {
		set[n.Region] = true
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// BorderNodes returns the nodes with at least one edge to a node in a
// different region, sorted by ID. These are the nodes the paper's modified
// MST algorithm builds the back-bone from: "the back-bone MST is formed by
// nodes which are directly connected to nodes in other regions" (§3.3.1-A).
func (g *Graph) BorderNodes() []Node {
	var out []Node
	for id, n := range g.nodes {
		for nb := range g.adj[id] {
			if g.nodes[nb].Region != n.Region {
				out = append(out, n)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Connected reports whether every node is reachable from every other.
// The empty graph is considered connected.
func (g *Graph) Connected() bool {
	if len(g.nodes) == 0 {
		return true
	}
	var start NodeID
	for id := range g.nodes {
		start = id
		break
	}
	seen := map[NodeID]bool{start: true}
	stack := []NodeID{start}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for nb := range g.adj[id] {
			if !seen[nb] {
				seen[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	return len(seen) == len(g.nodes)
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	for id, n := range g.nodes {
		c.nodes[id] = n
		c.adj[id] = make(map[NodeID]float64, len(g.adj[id]))
		for nb, w := range g.adj[id] {
			c.adj[id][nb] = w
		}
	}
	return c
}

// Subgraph returns the induced subgraph on the given node IDs. Unknown IDs
// are ignored.
func (g *Graph) Subgraph(ids []NodeID) *Graph {
	keep := make(map[NodeID]bool, len(ids))
	for _, id := range ids {
		keep[id] = true
	}
	s := New()
	for id, n := range g.nodes {
		if keep[id] {
			s.nodes[id] = n
			s.adj[id] = make(map[NodeID]float64)
		}
	}
	for id := range s.nodes {
		for nb, w := range g.adj[id] {
			if keep[nb] {
				s.adj[id][nb] = w
			}
		}
	}
	return s
}

// Paths holds single-source shortest-path results.
type Paths struct {
	Source NodeID
	Dist   map[NodeID]float64
	Prev   map[NodeID]NodeID // predecessor on the shortest path; source absent
}

// ShortestPaths runs Dijkstra from src. This is the "shortest-path zero-load
// (i.e., no traffic) algorithm between hosts and servers" the assignment
// procedure initializes connection costs with (§3.1.1). Unreachable nodes
// are absent from Dist.
func (g *Graph) ShortestPaths(src NodeID) (Paths, error) {
	f := g.Frozen()
	si, ok := f.IndexOf(src)
	if !ok {
		return Paths{}, fmt.Errorf("%w: %d", ErrNodeNotFound, src)
	}
	n := f.Len()
	dist := make([]float64, n)
	prev := make([]int32, n)
	f.ShortestFrom(si, dist, prev)
	p := Paths{Source: src, Dist: make(map[NodeID]float64, n), Prev: make(map[NodeID]NodeID, n)}
	for i := 0; i < n; i++ {
		if math.IsInf(dist[i], 1) {
			continue
		}
		p.Dist[f.IDOf(i)] = dist[i]
		if prev[i] >= 0 {
			p.Prev[f.IDOf(i)] = f.IDOf(int(prev[i]))
		}
	}
	return p, nil
}

// PathTo reconstructs the node sequence from the source to dst, inclusive.
// It returns nil if dst is unreachable.
func (p Paths) PathTo(dst NodeID) []NodeID {
	if _, ok := p.Dist[dst]; !ok {
		return nil
	}
	var rev []NodeID
	for at := dst; ; {
		rev = append(rev, at)
		if at == p.Source {
			break
		}
		at = p.Prev[at]
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// AllPairs computes shortest-path distances between every pair of nodes.
// The per-source Dijkstras fan out across GOMAXPROCS workers on the frozen
// view; the result is identical to running ShortestPaths serially.
func (g *Graph) AllPairs() (map[NodeID]map[NodeID]float64, error) {
	f := g.Frozen()
	dense := f.AllPairs()
	n := f.Len()
	out := make(map[NodeID]map[NodeID]float64, n)
	for i := 0; i < n; i++ {
		row := make(map[NodeID]float64, n)
		for j, d := range dense[i] {
			if !math.IsInf(d, 1) {
				row[f.IDOf(j)] = d
			}
		}
		out[f.IDOf(i)] = row
	}
	return out, nil
}

// unionFind is a disjoint-set forest with path compression over dense
// indices, for Kruskal.
type unionFind []int32

func newUnionFind(n int) unionFind {
	u := make(unionFind, n)
	for i := range u {
		u[i] = int32(i)
	}
	return u
}

func (u unionFind) find(x int32) int32 {
	for u[x] != x {
		u[x] = u[u[x]] // path halving
		x = u[x]
	}
	return x
}

func (u unionFind) union(a, b int32) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	u[ra] = rb
	return true
}

// Tree is a spanning tree: the chosen edges and their total weight.
type Tree struct {
	Edges  []Edge
	Weight float64
}

// Contains reports whether the tree includes the undirected edge a-b.
func (t Tree) Contains(a, b NodeID) bool {
	if a > b {
		a, b = b, a
	}
	for _, e := range t.Edges {
		if e.A == a && e.B == b {
			return true
		}
	}
	return false
}

// Adjacency returns the tree as an adjacency list keyed by node.
func (t Tree) Adjacency() map[NodeID][]NodeID {
	adj := make(map[NodeID][]NodeID)
	for _, e := range t.Edges {
		adj[e.A] = append(adj[e.A], e.B)
		adj[e.B] = append(adj[e.B], e.A)
	}
	for _, nbs := range adj {
		sort.Slice(nbs, func(i, j int) bool { return nbs[i] < nbs[j] })
	}
	return adj
}

// KruskalMST computes a minimum-weight spanning tree. With distinct edge
// weights the MST is unique ([GAL83] relies on this); ties are broken
// deterministically by edge endpoints. It fails if the graph is disconnected
// or empty of nodes.
func (g *Graph) KruskalMST() (Tree, error) {
	f := g.Frozen()
	if f.Len() == 0 {
		return Tree{}, ErrDisconnected
	}
	uf := newUnionFind(f.Len())
	var t Tree
	for i, e := range f.byWeight { // pre-sorted by (Weight, A, B) on the frozen view
		if uf.union(f.bwIdx[i][0], f.bwIdx[i][1]) {
			t.Edges = append(t.Edges, e)
			t.Weight += e.Weight
		}
	}
	if len(t.Edges) != f.Len()-1 {
		return Tree{}, ErrDisconnected
	}
	return t, nil
}

// PrimMST computes a minimum-weight spanning tree with Prim's algorithm
// (lazy-deletion edge heap over the frozen view, O(E log E) instead of the
// previous quadratic frontier rescans). For graphs with distinct edge
// weights it returns the same tree as KruskalMST; it exists as an
// independent cross-check. Ties break on (weight, lower endpoint, higher
// endpoint) for determinism.
func (g *Graph) PrimMST() (Tree, error) {
	f := g.Frozen()
	n := f.Len()
	if n == 0 {
		return Tree{}, ErrDisconnected
	}
	type cand struct {
		w        float64
		from, to int32
	}
	less := func(a, b cand) bool {
		if a.w != b.w {
			return a.w < b.w
		}
		if a.from != b.from {
			return a.from < b.from
		}
		return a.to < b.to
	}
	var h []cand
	push := func(c cand) {
		h = append(h, c)
		for i := len(h) - 1; i > 0; {
			p := (i - 1) / 2
			if less(h[p], h[i]) || !less(h[i], h[p]) {
				break
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
	}
	pop := func() cand {
		top := h[0]
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		for i := 0; ; {
			l, r, m := 2*i+1, 2*i+2, i
			if l < last && less(h[l], h[m]) {
				m = l
			}
			if r < last && less(h[r], h[m]) {
				m = r
			}
			if m == i {
				break
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
		return top
	}
	inTree := make([]bool, n)
	addFrontier := func(i int32) {
		inTree[i] = true
		nbrs, wts := f.Row(int(i))
		for k, nb := range nbrs {
			if !inTree[nb] {
				push(cand{w: wts[k], from: i, to: nb})
			}
		}
	}
	addFrontier(0) // dense index 0 == lowest NodeID, the previous start node
	var t Tree
	for len(t.Edges) < n-1 {
		if len(h) == 0 {
			return Tree{}, ErrDisconnected
		}
		c := pop()
		if inTree[c.to] {
			continue
		}
		t.Edges = append(t.Edges, normEdge(f.IDOf(int(c.from)), f.IDOf(int(c.to)), c.w))
		t.Weight += c.w
		addFrontier(c.to)
	}
	sort.Slice(t.Edges, func(i, j int) bool {
		if t.Edges[i].A != t.Edges[j].A {
			return t.Edges[i].A < t.Edges[j].A
		}
		return t.Edges[i].B < t.Edges[j].B
	})
	return t, nil
}

// WriteDOT renders the graph in Graphviz DOT format, grouping nodes into
// clusters by region. tree, if non-nil, highlights its edges in bold — used
// to render Figure 2 (back-bone MST + local MSTs).
func (g *Graph) WriteDOT(w io.Writer, name string, tree *Tree) error {
	if _, err := fmt.Fprintf(w, "graph %q {\n", name); err != nil {
		return err
	}
	for ri, region := range g.Regions() {
		if region != "" {
			fmt.Fprintf(w, "  subgraph cluster_%d {\n    label=%q;\n", ri, region)
		}
		for _, n := range g.NodesInRegion(region) {
			label := n.Label
			if label == "" {
				label = fmt.Sprintf("n%d", n.ID)
			}
			shape := "ellipse"
			switch n.Kind {
			case KindServer:
				shape = "box"
			case KindRouter:
				shape = "diamond"
			}
			indent := "  "
			if region != "" {
				indent = "    "
			}
			fmt.Fprintf(w, "%sn%d [label=%q shape=%s];\n", indent, n.ID, label, shape)
		}
		if region != "" {
			fmt.Fprintln(w, "  }")
		}
	}
	for _, e := range g.Edges() {
		style := ""
		if tree != nil && tree.Contains(e.A, e.B) {
			style = " style=bold penwidth=2"
		}
		fmt.Fprintf(w, "  n%d -- n%d [label=\"%g\"%s];\n", e.A, e.B, e.Weight, style)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
