package graph

// This file implements the frozen (indexed) view of a Graph: a dense node
// index plus CSR-style adjacency arrays, built once and cached until the
// next mutation. The hot algorithms (Dijkstra, all-pairs, Kruskal, Prim)
// run on it with array reads instead of map lookups, and the sorted edge
// lists are computed once per topology instead of once per call.

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Frozen is an immutable, densely indexed snapshot of a Graph. Nodes are
// numbered 0..Len()-1 in ascending NodeID order, so index order and NodeID
// order coincide (which keeps tie-breaking identical to the map-based
// algorithms). A Frozen is safe for concurrent use; it never observes later
// mutations of the Graph it was built from.
type Frozen struct {
	ids      []NodeID          // dense index -> NodeID, ascending
	index    map[NodeID]int32  // NodeID -> dense index
	rowStart []int32           // CSR row offsets, len = Len()+1
	nbr      []int32           // neighbor dense indices, row-sorted ascending
	wt       []float64         // edge weights parallel to nbr
	edges    []Edge            // undirected edges sorted by (A, B)
	byWeight []Edge            // undirected edges sorted by (Weight, A, B)
	bwIdx    [][2]int32        // dense endpoints parallel to byWeight
}

// Frozen returns the cached frozen view, building it on first use. Any
// mutation of the graph (AddNode, AddEdge, RemoveEdge, RemoveNode)
// invalidates the cache; the next call rebuilds it. Concurrent readers may
// call Frozen simultaneously, but mutation remains unsynchronized with
// reads, as everywhere else on Graph.
func (g *Graph) Frozen() *Frozen {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.frozen == nil {
		g.frozen = freeze(g)
	}
	return g.frozen
}

// invalidate drops the cached frozen view; called by every mutation.
func (g *Graph) invalidate() {
	g.mu.Lock()
	g.frozen = nil
	g.mu.Unlock()
}

func freeze(g *Graph) *Frozen {
	n := len(g.nodes)
	f := &Frozen{
		ids:      make([]NodeID, 0, n),
		index:    make(map[NodeID]int32, n),
		rowStart: make([]int32, n+1),
	}
	for id := range g.nodes {
		f.ids = append(f.ids, id)
	}
	sort.Slice(f.ids, func(i, j int) bool { return f.ids[i] < f.ids[j] })
	for i, id := range f.ids {
		f.index[id] = int32(i)
	}
	total := 0
	for i, id := range f.ids {
		f.rowStart[i] = int32(total)
		total += len(g.adj[id])
	}
	f.rowStart[n] = int32(total)
	f.nbr = make([]int32, total)
	f.wt = make([]float64, total)
	f.edges = make([]Edge, 0, total/2)
	for i, id := range f.ids {
		row := f.nbr[f.rowStart[i]:f.rowStart[i+1]]
		k := 0
		for nb := range g.adj[id] {
			row[k] = f.index[nb]
			k++
		}
		sort.Slice(row, func(x, y int) bool { return row[x] < row[y] })
		for j, nbIdx := range row {
			w := g.adj[id][f.ids[nbIdx]]
			f.wt[f.rowStart[i]+int32(j)] = w
			// Index order == NodeID order, so emitting (i < nb) rows in
			// ascending row/neighbor order yields edges sorted by (A, B).
			if int32(i) < nbIdx {
				f.edges = append(f.edges, Edge{A: id, B: f.ids[nbIdx], Weight: w})
			}
		}
	}
	f.byWeight = append([]Edge(nil), f.edges...)
	sort.Slice(f.byWeight, func(i, j int) bool {
		if f.byWeight[i].Weight != f.byWeight[j].Weight {
			return f.byWeight[i].Weight < f.byWeight[j].Weight
		}
		if f.byWeight[i].A != f.byWeight[j].A {
			return f.byWeight[i].A < f.byWeight[j].A
		}
		return f.byWeight[i].B < f.byWeight[j].B
	})
	f.bwIdx = make([][2]int32, len(f.byWeight))
	for i, e := range f.byWeight {
		f.bwIdx[i] = [2]int32{f.index[e.A], f.index[e.B]}
	}
	return f
}

// Len reports the number of nodes in the frozen view.
func (f *Frozen) Len() int { return len(f.ids) }

// IDOf maps a dense index back to its NodeID.
func (f *Frozen) IDOf(i int) NodeID { return f.ids[i] }

// IndexOf maps a NodeID to its dense index.
func (f *Frozen) IndexOf(id NodeID) (int, bool) {
	i, ok := f.index[id]
	return int(i), ok
}

// Edges returns the undirected edges sorted by (A, B). The returned slice
// is the cached copy shared by all callers — read-only.
func (f *Frozen) Edges() []Edge { return f.edges }

// EdgesByWeight returns the undirected edges sorted by (Weight, A, B) —
// Kruskal's order, computed once per topology. Read-only.
func (f *Frozen) EdgesByWeight() []Edge { return f.byWeight }

// Row returns node i's CSR adjacency row: neighbor dense indices (ascending)
// and the parallel edge weights. Both slices are read-only views.
func (f *Frozen) Row(i int) (nbr []int32, wt []float64) {
	return f.nbr[f.rowStart[i]:f.rowStart[i+1]], f.wt[f.rowStart[i]:f.rowStart[i+1]]
}

// distItem is a binary-heap entry for the array Dijkstra.
type distItem struct {
	dist float64
	idx  int32
}

// distHeap is a hand-rolled binary min-heap: no interface dispatch on the
// hot path. Ties break on the dense index, which equals NodeID order.
type distHeap []distItem

func (h *distHeap) push(it distItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].dist < s[i].dist || (s[p].dist == s[i].dist && s[p].idx <= s[i].idx) {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *distHeap) pop() distItem {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && (s[l].dist < s[m].dist || (s[l].dist == s[m].dist && s[l].idx < s[m].idx)) {
			m = l
		}
		if r < last && (s[r].dist < s[m].dist || (s[r].dist == s[m].dist && s[r].idx < s[m].idx)) {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// ShortestFrom runs Dijkstra from the dense index src, writing results into
// the caller-provided scratch: dist[i] is the distance to node i (+Inf when
// unreachable) and prev[i] the predecessor's dense index (-1 for src and
// unreachable nodes). Both slices must have length Len(). Scratch reuse
// across calls is what lets the parallel fan-outs run allocation-free.
func (f *Frozen) ShortestFrom(src int, dist []float64, prev []int32) {
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	h := distHeap{{dist: 0, idx: int32(src)}}
	for len(h) > 0 {
		it := h.pop()
		if it.dist > dist[it.idx] {
			continue // stale entry
		}
		start, end := f.rowStart[it.idx], f.rowStart[it.idx+1]
		for k := start; k < end; k++ {
			nb := f.nbr[k]
			nd := it.dist + f.wt[k]
			if nd < dist[nb] {
				dist[nb] = nd
				prev[nb] = it.idx
				h.push(distItem{dist: nd, idx: nb})
			}
		}
	}
}

// AllPairs computes the full distance matrix, one Dijkstra per source,
// fanned out across GOMAXPROCS workers. out[i][j] is the distance from node
// i to node j in dense-index order; unreachable pairs are +Inf.
func (f *Frozen) AllPairs() [][]float64 {
	n := f.Len()
	out := make([][]float64, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var next int32 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			prev := make([]int32, n)
			for {
				i := int(atomic.AddInt32(&next, 1))
				if i >= n {
					return
				}
				dist := make([]float64, n)
				f.ShortestFrom(i, dist, prev)
				out[i] = dist
			}
		}()
	}
	wg.Wait()
	return out
}
