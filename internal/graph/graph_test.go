package graph

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func line(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.MustAddNode(Node{ID: NodeID(i), Kind: KindRouter})
	}
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(NodeID(i), NodeID(i+1), 1)
	}
	return g
}

func TestAddNodeDuplicate(t *testing.T) {
	g := New()
	if err := g.AddNode(Node{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(Node{ID: 1}); !errors.Is(err, ErrNodeExists) {
		t.Errorf("duplicate AddNode err = %v, want ErrNodeExists", err)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New()
	g.MustAddNode(Node{ID: 1})
	g.MustAddNode(Node{ID: 2})
	cases := []struct {
		name    string
		a, b    NodeID
		w       float64
		wantErr error
	}{
		{"self loop", 1, 1, 1, ErrSelfLoop},
		{"zero weight", 1, 2, 0, ErrBadWeight},
		{"negative weight", 1, 2, -3, ErrBadWeight},
		{"inf weight", 1, 2, math.Inf(1), ErrBadWeight},
		{"nan weight", 1, 2, math.NaN(), ErrBadWeight},
		{"missing a", 9, 2, 1, ErrNodeNotFound},
		{"missing b", 1, 9, 1, ErrNodeNotFound},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := g.AddEdge(c.a, c.b, c.w); !errors.Is(err, c.wantErr) {
				t.Errorf("AddEdge(%d,%d,%v) err = %v, want %v", c.a, c.b, c.w, err, c.wantErr)
			}
		})
	}
	if err := g.AddEdge(1, 2, 5); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 1, 5); !errors.Is(err, ErrDuplicateEdge) {
		t.Errorf("duplicate edge err = %v, want ErrDuplicateEdge", err)
	}
}

func TestRemoveEdgeAndNode(t *testing.T) {
	g := line(3)
	if err := g.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Weight(0, 1); ok {
		t.Error("edge 0-1 still present after RemoveEdge")
	}
	if err := g.RemoveEdge(0, 1); !errors.Is(err, ErrEdgeNotFound) {
		t.Errorf("double RemoveEdge err = %v, want ErrEdgeNotFound", err)
	}
	if err := g.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Node(1); ok {
		t.Error("node 1 still present after RemoveNode")
	}
	if _, ok := g.Weight(1, 2); ok {
		t.Error("incident edge 1-2 survived RemoveNode")
	}
	if err := g.RemoveNode(1); !errors.Is(err, ErrNodeNotFound) {
		t.Errorf("double RemoveNode err = %v, want ErrNodeNotFound", err)
	}
}

func TestNodesEdgesSorted(t *testing.T) {
	g := New()
	for _, id := range []NodeID{5, 1, 3} {
		g.MustAddNode(Node{ID: id})
	}
	g.MustAddEdge(5, 1, 2)
	g.MustAddEdge(3, 1, 4)
	nodes := g.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i].ID <= nodes[i-1].ID {
			t.Fatalf("Nodes() not sorted: %v", nodes)
		}
	}
	edges := g.Edges()
	if len(edges) != 2 || edges[0].A != 1 || edges[0].B != 3 || edges[1].B != 5 {
		t.Errorf("Edges() = %v, want sorted normalized edges", edges)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges() = %d, want 2", g.NumEdges())
	}
}

func TestConnected(t *testing.T) {
	if !New().Connected() {
		t.Error("empty graph should be connected")
	}
	g := line(4)
	if !g.Connected() {
		t.Error("line should be connected")
	}
	g.MustAddNode(Node{ID: 99})
	if g.Connected() {
		t.Error("graph with isolated node reported connected")
	}
}

func TestShortestPathsLine(t *testing.T) {
	g := line(5)
	p, err := g.ShortestPaths(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if p.Dist[NodeID(i)] != float64(i) {
			t.Errorf("dist to %d = %v, want %d", i, p.Dist[NodeID(i)], i)
		}
	}
	path := p.PathTo(4)
	want := []NodeID{0, 1, 2, 3, 4}
	if len(path) != len(want) {
		t.Fatalf("PathTo(4) = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("PathTo(4) = %v, want %v", path, want)
		}
	}
}

func TestShortestPathsPrefersCheaperLongerRoute(t *testing.T) {
	g := New()
	for i := 0; i < 3; i++ {
		g.MustAddNode(Node{ID: NodeID(i)})
	}
	g.MustAddEdge(0, 2, 10)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 2, 3)
	p, err := g.ShortestPaths(0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dist[2] != 5 {
		t.Errorf("dist 0→2 = %v, want 5 (via node 1)", p.Dist[2])
	}
	if got := p.PathTo(2); len(got) != 3 || got[1] != 1 {
		t.Errorf("PathTo(2) = %v, want [0 1 2]", got)
	}
}

func TestShortestPathsUnreachable(t *testing.T) {
	g := line(2)
	g.MustAddNode(Node{ID: 9})
	p, err := g.ShortestPaths(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Dist[9]; ok {
		t.Error("unreachable node has a distance")
	}
	if p.PathTo(9) != nil {
		t.Error("PathTo(unreachable) != nil")
	}
}

func TestShortestPathsUnknownSource(t *testing.T) {
	if _, err := line(2).ShortestPaths(42); !errors.Is(err, ErrNodeNotFound) {
		t.Errorf("err = %v, want ErrNodeNotFound", err)
	}
}

func TestAllPairsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomConnected(rng, 12, 8, 1)
	ap, err := g.AllPairs()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range g.NodeIDs() {
		for _, b := range g.NodeIDs() {
			if ap[a][b] != ap[b][a] {
				t.Fatalf("asymmetric distance %d↔%d: %v vs %v", a, b, ap[a][b], ap[b][a])
			}
		}
	}
}

func TestKruskalEqualsPrim(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnected(rng, 20, 15, 1)
		k, err := g.KruskalMST()
		if err != nil {
			t.Fatal(err)
		}
		p, err := g.PrimMST()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(k.Weight-p.Weight) > 1e-9 {
			t.Fatalf("seed %d: Kruskal weight %v != Prim weight %v", seed, k.Weight, p.Weight)
		}
		if len(k.Edges) != g.NumNodes()-1 {
			t.Fatalf("seed %d: MST has %d edges, want %d", seed, len(k.Edges), g.NumNodes()-1)
		}
		// Distinct weights ⇒ unique MST ⇒ identical edge sets.
		for _, e := range k.Edges {
			if !p.Contains(e.A, e.B) {
				t.Fatalf("seed %d: edge %v in Kruskal MST but not Prim MST", seed, e)
			}
		}
	}
}

func TestMSTDisconnected(t *testing.T) {
	g := line(2)
	g.MustAddNode(Node{ID: 9})
	if _, err := g.KruskalMST(); !errors.Is(err, ErrDisconnected) {
		t.Errorf("Kruskal err = %v, want ErrDisconnected", err)
	}
	if _, err := g.PrimMST(); !errors.Is(err, ErrDisconnected) {
		t.Errorf("Prim err = %v, want ErrDisconnected", err)
	}
	if _, err := New().KruskalMST(); !errors.Is(err, ErrDisconnected) {
		t.Errorf("empty Kruskal err = %v, want ErrDisconnected", err)
	}
}

// Property: an MST spans the graph (its edges connect all nodes) and its
// weight never exceeds the weight of the full graph.
func TestPropertyMSTSpans(t *testing.T) {
	f := func(seed int64, sz uint8, extra uint8) bool {
		n := int(sz%30) + 2
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnected(rng, n, int(extra%20), 1)
		mst, err := g.KruskalMST()
		if err != nil {
			return false
		}
		sub := New()
		for _, nd := range g.Nodes() {
			sub.MustAddNode(nd)
		}
		var total float64
		for _, e := range g.Edges() {
			total += e.Weight
		}
		for _, e := range mst.Edges {
			sub.MustAddEdge(e.A, e.B, e.Weight)
		}
		return sub.Connected() && mst.Weight <= total+1e-9
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTreeAdjacency(t *testing.T) {
	tr := Tree{Edges: []Edge{{A: 1, B: 2, Weight: 1}, {A: 2, B: 3, Weight: 1}}}
	adj := tr.Adjacency()
	if len(adj[2]) != 2 || adj[2][0] != 1 || adj[2][1] != 3 {
		t.Errorf("Adjacency()[2] = %v, want [1 3]", adj[2])
	}
	if !tr.Contains(3, 2) || tr.Contains(1, 3) {
		t.Error("Contains gave wrong membership")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := line(3)
	c := g.Clone()
	g.MustAddNode(Node{ID: 77})
	if _, ok := c.Node(77); ok {
		t.Error("mutation of original visible in clone")
	}
	if err := c.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Weight(0, 1); !ok {
		t.Error("mutation of clone visible in original")
	}
}

func TestSubgraph(t *testing.T) {
	g := line(5)
	s := g.Subgraph([]NodeID{1, 2, 3, 42})
	if s.NumNodes() != 3 {
		t.Fatalf("subgraph has %d nodes, want 3", s.NumNodes())
	}
	if s.NumEdges() != 2 {
		t.Errorf("subgraph has %d edges, want 2 (1-2, 2-3)", s.NumEdges())
	}
	if _, ok := s.Weight(0, 1); ok {
		t.Error("subgraph contains edge to excluded node")
	}
}

func TestRegionsAndBorderNodes(t *testing.T) {
	g := New()
	g.MustAddNode(Node{ID: 1, Region: "east"})
	g.MustAddNode(Node{ID: 2, Region: "east"})
	g.MustAddNode(Node{ID: 3, Region: "west"})
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	regions := g.Regions()
	if len(regions) != 2 || regions[0] != "east" || regions[1] != "west" {
		t.Errorf("Regions() = %v", regions)
	}
	border := g.BorderNodes()
	if len(border) != 2 || border[0].ID != 2 || border[1].ID != 3 {
		t.Errorf("BorderNodes() = %v, want nodes 2 and 3", border)
	}
	east := g.NodesInRegion("east")
	if len(east) != 2 {
		t.Errorf("NodesInRegion(east) = %v", east)
	}
}

func TestFigure1Invariants(t *testing.T) {
	ex := Figure1()
	if !ex.G.Connected() {
		t.Fatal("Figure 1 topology not connected")
	}
	if got := ex.TotalUsers(); got != 270 {
		t.Errorf("total users = %d, want 270", got)
	}
	// Every link costs one unit.
	for _, e := range ex.G.Edges() {
		if e.Weight != 1 {
			t.Errorf("edge %v has weight %v, want 1", e, e.Weight)
		}
	}
	// Prose constraint: shortest one-way path H2→S1 is 2 units.
	p, err := ex.G.ShortestPaths(ex.Hosts[1])
	if err != nil {
		t.Fatal(err)
	}
	if d := p.Dist[ex.Servers[0]]; d != 2 {
		t.Errorf("dist H2→S1 = %v, want 2", d)
	}
	// Nearest servers must reproduce Table 1's assignment.
	wantNearest := []int{0, 1, 0, 1, 1, 2} // index into ex.Servers per host
	for hi, h := range ex.Hosts {
		ph, err := ex.G.ShortestPaths(h)
		if err != nil {
			t.Fatal(err)
		}
		best, bestD := -1, math.Inf(1)
		for si, s := range ex.Servers {
			if d := ph.Dist[s]; d < bestD {
				best, bestD = si, d
			}
		}
		if best != wantNearest[hi] {
			t.Errorf("host H%d nearest server = S%d, want S%d", hi+1, best+1, wantNearest[hi]+1)
		}
	}
}

func TestTable3VariantInvariants(t *testing.T) {
	ex := Table3Variant()
	if !ex.G.Connected() {
		t.Fatal("Table 3 topology not connected")
	}
	want := []int{100, 100, 20}
	for i, h := range ex.Hosts {
		if ex.Users[h] != want[i] {
			t.Errorf("users on H%d = %d, want %d", i+1, ex.Users[h], want[i])
		}
	}
}

func TestRandomConnectedProperties(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + int(seed)*3
		g := RandomConnected(rng, n, 7, 1)
		if g.NumNodes() != n {
			t.Fatalf("seed %d: %d nodes, want %d", seed, g.NumNodes(), n)
		}
		if !g.Connected() {
			t.Fatalf("seed %d: not connected", seed)
		}
		// All weights distinct.
		seen := make(map[float64]bool)
		for _, e := range g.Edges() {
			if seen[e.Weight] {
				t.Fatalf("seed %d: duplicate weight %v", seed, e.Weight)
			}
			seen[e.Weight] = true
		}
	}
}

func TestRandomConnectedDegenerate(t *testing.T) {
	if g := RandomConnected(rand.New(rand.NewSource(1)), 0, 5, 1); g.NumNodes() != 0 {
		t.Error("n=0 should give empty graph")
	}
	if g := RandomConnected(rand.New(rand.NewSource(1)), 1, 5, 1); g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Error("n=1 should give single node, no edges")
	}
	// Extra edges beyond the complete graph are clamped.
	g := RandomConnected(rand.New(rand.NewSource(1)), 4, 1000, 1)
	if g.NumEdges() != 6 {
		t.Errorf("complete K4 should have 6 edges, got %d", g.NumEdges())
	}
}

func TestMultiRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := MultiRegion(rng, MultiRegionSpec{Regions: 4, NodesPerRegion: 6, ExtraIntra: 3, InterLinks: 2})
	if !g.Connected() {
		t.Fatal("multi-region graph not connected")
	}
	if got := len(g.Regions()); got != 4 {
		t.Fatalf("got %d regions, want 4", got)
	}
	if len(g.BorderNodes()) < 4 {
		t.Errorf("expected at least one border node per region, got %d", len(g.BorderNodes()))
	}
	// Intra-region subgraphs stay connected (needed for local MSTs).
	for _, region := range g.Regions() {
		var ids []NodeID
		for _, n := range g.NodesInRegion(region) {
			ids = append(ids, n.ID)
		}
		if sub := g.Subgraph(ids); !sub.Connected() {
			t.Errorf("region %s subgraph not connected", region)
		}
	}
}

func TestMultiRegionTwoRegionsNoDuplicateRing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := MultiRegion(rng, MultiRegionSpec{Regions: 2, NodesPerRegion: 4, InterLinks: 1})
	if !g.Connected() {
		t.Fatal("2-region graph not connected")
	}
	inter := 0
	for _, e := range g.Edges() {
		na, _ := g.Node(e.A)
		nb, _ := g.Node(e.B)
		if na.Region != nb.Region {
			inter++
		}
	}
	if inter != 1 {
		t.Errorf("2 regions with InterLinks=1 should have exactly 1 inter-region link, got %d", inter)
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.NumNodes() != 12 {
		t.Fatalf("grid nodes = %d, want 12", g.NumNodes())
	}
	if g.NumEdges() != 17 { // 3*3 horizontal + 2*4 vertical
		t.Errorf("grid edges = %d, want 17", g.NumEdges())
	}
	if !g.Connected() {
		t.Error("grid not connected")
	}
}

func TestWriteDOT(t *testing.T) {
	ex := Figure1()
	mst, err := ex.G.KruskalMST()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ex.G.WriteDOT(&buf, "fig1", &mst); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph \"fig1\"", "H1", "S3", "style=bold", "cluster_0"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}
