package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// benchGraph is a 2k-node topology shared by the micro-benchmarks.
func benchGraph() *Graph {
	rng := rand.New(rand.NewSource(42))
	return RandomConnected(rng, 2000, 6000, 1)
}

// BenchmarkEdgesCached measures Edges() backed by the frozen view's cached
// sort: each call pays one O(E) copy, no re-sort.
func BenchmarkEdgesCached(b *testing.B) {
	g := benchGraph()
	g.Frozen() // build outside the measurement
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(g.Edges()) == 0 {
			b.Fatal("no edges")
		}
	}
}

// BenchmarkEdgesResortBaseline replicates the pre-frozen behavior — collect
// from the adjacency maps and sort on every call — to show the cache win.
func BenchmarkEdgesResortBaseline(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out []Edge
		for a, nbs := range g.adj {
			for bb, w := range nbs {
				if a < bb {
					out = append(out, Edge{A: a, B: bb, Weight: w})
				}
			}
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].A != out[j].A {
				return out[i].A < out[j].A
			}
			return out[i].B < out[j].B
		})
		if len(out) == 0 {
			b.Fatal("no edges")
		}
	}
}

// BenchmarkKruskalRepeated measures repeated MST builds on one topology —
// the mst.Backbone pattern — which now reuse the frozen pre-sorted edges.
func BenchmarkKruskalRepeated(b *testing.B) {
	g := benchGraph()
	g.Frozen()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.KruskalMST(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShortestPaths2k measures one single-source Dijkstra on the 2k
// topology through the public map-returning API.
func BenchmarkShortestPaths2k(b *testing.B) {
	g := benchGraph()
	g.Frozen()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.ShortestPaths(NodeID(i % 2000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrozenShortestFrom measures the allocation-free array Dijkstra
// the assignment fan-out uses.
func BenchmarkFrozenShortestFrom(b *testing.B) {
	f := benchGraph().Frozen()
	dist := make([]float64, f.Len())
	prev := make([]int32, f.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ShortestFrom(i%f.Len(), dist, prev)
	}
}

// BenchmarkAllPairs600 measures the parallel all-pairs fan-out on a 600-node
// topology (2k all-pairs would dominate the bench budget).
func BenchmarkAllPairs600(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	g := RandomConnected(rng, 600, 1800, 1)
	f := g.Frozen()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := f.AllPairs(); len(rows) != 600 {
			b.Fatal("short result")
		}
	}
}
