package graph

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestFrozenIndexRoundTrip(t *testing.T) {
	g := New()
	for _, id := range []NodeID{7, 2, 9, 4} {
		g.MustAddNode(Node{ID: id})
	}
	f := g.Frozen()
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want 4", f.Len())
	}
	want := []NodeID{2, 4, 7, 9}
	for i, id := range want {
		if f.IDOf(i) != id {
			t.Errorf("IDOf(%d) = %d, want %d", i, f.IDOf(i), id)
		}
		if got, ok := f.IndexOf(id); !ok || got != i {
			t.Errorf("IndexOf(%d) = %d,%v, want %d,true", id, got, ok, i)
		}
	}
	if _, ok := f.IndexOf(42); ok {
		t.Error("IndexOf(unknown) reported present")
	}
}

func TestFrozenCachedAndInvalidated(t *testing.T) {
	g := line(4)
	f1 := g.Frozen()
	if f2 := g.Frozen(); f1 != f2 {
		t.Error("Frozen not cached between calls")
	}
	// Every mutation must invalidate.
	g.MustAddNode(Node{ID: 99})
	f3 := g.Frozen()
	if f3 == f1 || f3.Len() != 5 {
		t.Error("AddNode did not invalidate the frozen view")
	}
	g.MustAddEdge(3, 99, 1)
	if f := g.Frozen(); f == f3 || len(f.Edges()) != 4 {
		t.Error("AddEdge did not invalidate the frozen view")
	}
	if err := g.RemoveEdge(3, 99); err != nil {
		t.Fatal(err)
	}
	if f := g.Frozen(); len(f.Edges()) != 3 {
		t.Error("RemoveEdge did not invalidate the frozen view")
	}
	if err := g.RemoveNode(99); err != nil {
		t.Fatal(err)
	}
	if f := g.Frozen(); f.Len() != 4 {
		t.Error("RemoveNode did not invalidate the frozen view")
	}
	// Queries through the refreshed view see the mutation.
	p, err := g.ShortestPaths(0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dist[3] != 3 {
		t.Errorf("dist 0→3 = %v after mutations, want 3", p.Dist[3])
	}
}

func TestFrozenEdgesSortedAndCached(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := RandomConnected(rng, 30, 40, 1)
	f := g.Frozen()
	edges := f.Edges()
	for i := 1; i < len(edges); i++ {
		if edges[i].A < edges[i-1].A ||
			(edges[i].A == edges[i-1].A && edges[i].B <= edges[i-1].B) {
			t.Fatalf("Edges not sorted by (A,B) at %d: %v, %v", i, edges[i-1], edges[i])
		}
	}
	bw := f.EdgesByWeight()
	if len(bw) != len(edges) {
		t.Fatalf("EdgesByWeight len %d != Edges len %d", len(bw), len(edges))
	}
	for i := 1; i < len(bw); i++ {
		if bw[i].Weight < bw[i-1].Weight {
			t.Fatalf("EdgesByWeight not sorted at %d", i)
		}
	}
	// Graph.Edges returns a defensive copy of the cached slice.
	out := g.Edges()
	out[0].Weight = -123
	if f.Edges()[0].Weight == -123 {
		t.Error("Graph.Edges aliased the cached frozen slice")
	}
}

func TestFrozenShortestFromMatchesBellmanFord(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnected(rng, 40, 30, 1)
		g.MustAddNode(Node{ID: 999}) // unreachable island
		f := g.Frozen()
		dist := make([]float64, f.Len())
		prev := make([]int32, f.Len())
		src := rng.Intn(40)
		f.ShortestFrom(src, dist, prev)
		oracle := bellmanFord(g, f.IDOf(src))
		for i := 0; i < f.Len(); i++ {
			want, reach := oracle[f.IDOf(i)]
			if !reach {
				if !math.IsInf(dist[i], 1) {
					t.Fatalf("seed %d: node %d reachable in frozen but not oracle", seed, f.IDOf(i))
				}
				if prev[i] != -1 {
					t.Fatalf("seed %d: unreachable node %d has prev", seed, f.IDOf(i))
				}
				continue
			}
			if math.Abs(dist[i]-want) > 1e-9 {
				t.Fatalf("seed %d: dist to %d = %v, want %v", seed, f.IDOf(i), dist[i], want)
			}
		}
		// prev encodes a valid shortest-path tree: dist[i] = dist[prev]+w.
		for i := 0; i < f.Len(); i++ {
			if prev[i] < 0 {
				continue
			}
			w, ok := g.Weight(f.IDOf(int(prev[i])), f.IDOf(i))
			if !ok {
				t.Fatalf("prev edge %d-%d not in graph", f.IDOf(int(prev[i])), f.IDOf(i))
			}
			if math.Abs(dist[prev[i]]+w-dist[i]) > 1e-9 {
				t.Fatalf("prev chain not tight at node %d", f.IDOf(i))
			}
		}
	}
}

func TestFrozenAllPairsMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := RandomConnected(rng, 25, 20, 1)
	f := g.Frozen()
	dense := f.AllPairs()
	ap, err := g.AllPairs()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < f.Len(); i++ {
		p, err := g.ShortestPaths(f.IDOf(i))
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < f.Len(); j++ {
			want := p.Dist[f.IDOf(j)]
			if math.Abs(dense[i][j]-want) > 1e-12 {
				t.Fatalf("dense[%d][%d] = %v, want %v", i, j, dense[i][j], want)
			}
			if math.Abs(ap[f.IDOf(i)][f.IDOf(j)]-want) > 1e-12 {
				t.Fatalf("AllPairs map mismatch at %d,%d", i, j)
			}
		}
	}
}

// Concurrent read-only use must be race-free: many goroutines forcing the
// lazy freeze and running queries on the same graph (exercised under -race
// by tier-2).
func TestFrozenConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomConnected(rng, 60, 60, 1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := NodeID(w * 7 % 60)
			for i := 0; i < 10; i++ {
				if _, err := g.ShortestPaths(src); err != nil {
					t.Error(err)
					return
				}
				if _, err := g.KruskalMST(); err != nil {
					t.Error(err)
					return
				}
				g.Edges()
			}
		}(w)
	}
	wg.Wait()
}

func TestFrozenRow(t *testing.T) {
	g := line(3)
	f := g.Frozen()
	i1, _ := f.IndexOf(1)
	nbrs, wts := f.Row(i1)
	if len(nbrs) != 2 || f.IDOf(int(nbrs[0])) != 0 || f.IDOf(int(nbrs[1])) != 2 {
		t.Fatalf("Row(1) neighbors = %v", nbrs)
	}
	if wts[0] != 1 || wts[1] != 1 {
		t.Fatalf("Row(1) weights = %v", wts)
	}
}

func TestFrozenEmptyGraph(t *testing.T) {
	f := New().Frozen()
	if f.Len() != 0 || len(f.Edges()) != 0 {
		t.Error("empty graph frozen view not empty")
	}
	if _, err := New().AllPairs(); err != nil {
		t.Errorf("AllPairs on empty graph: %v", err)
	}
}
