package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bellmanFord is an independent O(V·E) shortest-path oracle used to
// cross-check Dijkstra.
func bellmanFord(g *Graph, src NodeID) map[NodeID]float64 {
	dist := map[NodeID]float64{src: 0}
	edges := g.Edges()
	for i := 0; i < g.NumNodes(); i++ {
		changed := false
		for _, e := range edges {
			if da, ok := dist[e.A]; ok {
				if db, ok2 := dist[e.B]; !ok2 || da+e.Weight < db {
					dist[e.B] = da + e.Weight
					changed = true
				}
			}
			if db, ok := dist[e.B]; ok {
				if da, ok2 := dist[e.A]; !ok2 || db+e.Weight < da {
					dist[e.A] = db + e.Weight
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// Property: Dijkstra agrees with Bellman-Ford on random connected graphs.
func TestPropertyDijkstraMatchesBellmanFord(t *testing.T) {
	f := func(seed int64, szRaw, extraRaw uint8) bool {
		n := int(szRaw%25) + 2
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnected(rng, n, int(extraRaw%30), 1)
		src := g.NodeIDs()[rng.Intn(n)]
		p, err := g.ShortestPaths(src)
		if err != nil {
			return false
		}
		oracle := bellmanFord(g, src)
		if len(oracle) != len(p.Dist) {
			return false
		}
		for id, want := range oracle {
			if math.Abs(p.Dist[id]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: shortest-path distance is a metric — symmetric and satisfying
// the triangle inequality — on random connected graphs.
func TestPropertyShortestPathMetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		g := RandomConnected(rng, n, n/2, 1)
		ap, err := g.AllPairs()
		if err != nil {
			return false
		}
		ids := g.NodeIDs()
		for _, a := range ids {
			if ap[a][a] != 0 {
				return false
			}
			for _, b := range ids {
				if math.Abs(ap[a][b]-ap[b][a]) > 1e-9 {
					return false
				}
				for _, c := range ids {
					if ap[a][c] > ap[a][b]+ap[b][c]+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(37))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: a reconstructed shortest path is actually a path in the graph
// and its edge weights sum to the reported distance.
func TestPropertyPathToConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		g := RandomConnected(rng, n, n, 1)
		ids := g.NodeIDs()
		src := ids[rng.Intn(n)]
		dst := ids[rng.Intn(n)]
		p, err := g.ShortestPaths(src)
		if err != nil {
			return false
		}
		path := p.PathTo(dst)
		if len(path) == 0 || path[0] != src || path[len(path)-1] != dst {
			return false
		}
		sum := 0.0
		for i := 0; i+1 < len(path); i++ {
			w, ok := g.Weight(path[i], path[i+1])
			if !ok {
				return false // not an edge
			}
			sum += w
		}
		return math.Abs(sum-p.Dist[dst]) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: removing one MST edge disconnects the tree (it is minimal as a
// connected subgraph, not just minimum-weight).
func TestPropertyMSTMinimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		g := RandomConnected(rng, n, n/2, 1)
		mst, err := g.KruskalMST()
		if err != nil {
			return false
		}
		for drop := range mst.Edges {
			sub := New()
			for _, nd := range g.Nodes() {
				sub.MustAddNode(nd)
			}
			for i, e := range mst.Edges {
				if i == drop {
					continue
				}
				sub.MustAddEdge(e.A, e.B, e.Weight)
			}
			if sub.Connected() {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(43))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
