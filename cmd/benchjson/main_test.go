package main

import "testing"

func TestParseBench(t *testing.T) {
	r, ok := parseBench("BenchmarkBalanceScaleDense-8   \t      12\t   3973042 ns/op\t      1742 moves\t   2.203 max_util", "p")
	if !ok {
		t.Fatal("line rejected")
	}
	if r.Name != "BenchmarkBalanceScaleDense" {
		t.Errorf("name = %q", r.Name)
	}
	if r.Iterations != 12 {
		t.Errorf("iterations = %d", r.Iterations)
	}
	if r.Metrics["ns/op"] != 3973042 || r.Metrics["moves"] != 1742 || r.Metrics["max_util"] != 2.203 {
		t.Errorf("metrics = %v", r.Metrics)
	}
	if r.Pkg != "p" {
		t.Errorf("pkg = %q", r.Pkg)
	}
}

func TestParseBenchNoCPUSuffix(t *testing.T) {
	r, ok := parseBench("BenchmarkX 5 100 ns/op", "p")
	if !ok || r.Name != "BenchmarkX" || r.Metrics["ns/op"] != 100 {
		t.Fatalf("got %+v ok=%v", r, ok)
	}
}

func TestParseBenchRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX --- SKIP",           // odd field count, non-numeric
		"BenchmarkY",                    // bare name
		"BenchmarkZ-4 notanint 1 ns/op", // bad iteration count
	} {
		if _, ok := parseBench(line, ""); ok {
			t.Errorf("line %q accepted", line)
		}
	}
}
