// Command benchjson converts `go test -bench` output into a stable JSON
// document so benchmark history can be committed and diffed across PRs.
//
// It reads the benchmark stream on stdin, echoes every line to stdout (so it
// can sit at the end of a pipe without hiding progress), and writes JSON to
// the -o file:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchjson -o BENCH.json
//
// Each benchmark line
//
//	BenchmarkBalanceScaleDense   12   3973042 ns/op   1742 moves   ...
//
// becomes {"name": ..., "pkg": ..., "iterations": ..., "metrics": {unit:
// value, ...}} — ns/op, B/op, allocs/op, and every b.ReportMetric domain
// metric all land in the same metrics map. The format lives in
// internal/benchfmt, shared with cmd/mailbench.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/largemail/largemail/internal/benchfmt"
)

func main() {
	out := flag.String("o", "", "write JSON here (default stdout)")
	flag.Parse()

	d, err := benchfmt.ParseStream(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if err := d.WriteFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(d.Benchmarks), *out)
	}
}
