// Command benchjson converts `go test -bench` output into a stable JSON
// document so benchmark history can be committed and diffed across PRs.
//
// It reads the benchmark stream on stdin, echoes every line to stdout (so it
// can sit at the end of a pipe without hiding progress), and writes JSON to
// the -o file:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchjson -o BENCH.json
//
// Each benchmark line
//
//	BenchmarkBalanceScaleDense   12   3973042 ns/op   1742 moves   ...
//
// becomes {"name": ..., "pkg": ..., "iterations": ..., "metrics": {unit:
// value, ...}} — ns/op, B/op, allocs/op, and every b.ReportMetric domain
// metric all land in the same metrics map.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type doc struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write JSON here (default stdout)")
	flag.Parse()

	var d doc
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			d.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			d.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			d.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line, pkg); ok {
				d.Benchmarks = append(d.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	sort.Slice(d.Benchmarks, func(i, j int) bool {
		if d.Benchmarks[i].Pkg != d.Benchmarks[j].Pkg {
			return d.Benchmarks[i].Pkg < d.Benchmarks[j].Pkg
		}
		return d.Benchmarks[i].Name < d.Benchmarks[j].Name
	})
	buf, err := json.MarshalIndent(&d, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: marshal:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(d.Benchmarks), *out)
}

// parseBench parses one result line: name, iteration count, then
// value/unit pairs. Lines that don't fit (e.g. "BenchmarkX --- SKIP") are
// ignored.
func parseBench(line, pkg string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{
		Name:       strings.TrimSuffix(fields[0], "-"+lastCPUSuffix(fields[0])),
		Pkg:        pkg,
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// lastCPUSuffix returns the trailing GOMAXPROCS digits of "Name-8" (empty if
// the name carries no suffix, as under -cpu 1).
func lastCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return ""
	}
	suffix := name[i+1:]
	for _, c := range suffix {
		if c < '0' || c > '9' {
			return ""
		}
	}
	if suffix == "" {
		return ""
	}
	return suffix
}
