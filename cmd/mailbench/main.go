// Command mailbench runs the internal/loadgen closed-loop workload engine
// as a capacity harness: it sweeps population × server-count combinations
// on either transport, audits the paper's invariants online (exactly-once
// deposit, no loss under faults, monotone LastCheckingTime, the §3.1.2c
// ≈1-poll guarantee), reports per-stage latency quantiles from the obs
// snapshot, compares the §3.1.1 assignment's predicted utilization and
// Q(ρ)=ρ/(1−ρ) waits against the deposits each server actually served, and
// emits the committed benchmark document (internal/benchfmt).
//
// Typical runs:
//
//	go run ./cmd/mailbench -transport netsim -users 1000000 -servers 64 -seed 1
//	go run ./cmd/mailbench -transport netsim -users 1000000 -servers 64 -seed 1 -faults
//	go run ./cmd/mailbench -transport livenet -users 2000 -servers 8
//	go run ./cmd/mailbench -users 10000,100000 -servers 16,64 -o BENCH_PR4.json
//	go run ./cmd/mailbench -users 1000000 -servers 64 -batch 1,4,16,64 -faults -o BENCH_PR5.json
//	go run ./cmd/mailbench -users 1000000 -servers 64 -datadir /tmp/mb -faults -o BENCH_PR6.json
//	go run ./cmd/mailbench -users 1000000 -servers 64 -policy static,jsq,rebalance -profile hotspot -o BENCH_PR8.json
//	go run ./cmd/mailbench -arch roaming -users 1000000 -servers 64 -messages 6000 -ticks 300 -sessions 256
//	go run ./cmd/mailbench -arch attr -users 1000000 -servers 64 -ticks 300 -queries 60 -faults
//
// -arch selects the paper architecture under test: syntax (default, the
// §3.1 engine above), roaming (the §3.2 location-independent scenario with
// live rehash reconfiguration and the §3.2.2c overhead auditor), or attr
// (the §3.3 attribute mass-distribution scenario: predicate broadcasts down
// the back-bone MST, convergecast aggregation, loss/bound/partial auditors).
//
// With -datadir every server journals its mailbox store under a per-run
// subdirectory; the run reports WAL append throughput, and after the
// workload completes the harness closes every store and reopens it cold,
// timing the snapshot+WAL recovery replay. -faults on a durable run adds
// kill-restart windows (process death, restart from disk) to the chaos mix.
//
// The exit status is non-zero when any run finishes with auditor
// violations, so the harness doubles as a correctness gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/largemail/largemail/internal/benchfmt"
	"github.com/largemail/largemail/internal/faults"
	"github.com/largemail/largemail/internal/loadgen"
	"github.com/largemail/largemail/internal/mail/mailstore"
	"github.com/largemail/largemail/internal/obs"
	"github.com/largemail/largemail/internal/placement"
	"github.com/largemail/largemail/internal/sim"
	"github.com/largemail/largemail/internal/wire"
)

// params is one sweep point.
type params struct {
	transport string
	users     int
	servers   int
	regions   int
	seed      int64
	messages  int
	sessions  int
	ticks     int
	faults    bool
	batch     int     // relay batch size (0 = unbatched classic path)
	flush     int     // relay flush interval, sim units
	retry     int     // ack retry timeout, sim units (0 = server default)
	localBias float64 // 0 = workload default
	datadir   string  // durable store root ("" = memory stores)
	fsync     mailstore.FsyncMode
	proto     string // wire framing: "text" or "binary" (wire transport only)
	inflight  int    // pipeline depth for the wire throughput burst

	policy  string          // placement policy ("" = legacy hard-wired path)
	jsqd    int             // JSQ(d) sample width
	profile loadgen.Profile // workload shape (hotspot/diurnal/flash)
	profStr string          // the -profile flag value, for labels
	srate   float64         // per-server service rate, deposits/tick (0 = auto with -policy)

	arch    string // architecture: syntax (§3.1), roaming (§3.2), attr (§3.3)
	queries int    // mass-distribution queries (-arch attr; 0 = scenario default)

	noprune       bool // -arch attr: disable sketch pruning (exhaustive baseline)
	sketchRefresh int  // -arch attr: periodic sketch refresh cadence in ticks (0 = on demand)
}

// durPoint is one point of the -durability sweep.
type durPoint struct {
	datadir string
	fsync   mailstore.FsyncMode
	faults  bool // chaos point: force the kill-restart fault schedule
}

func main() {
	transport := flag.String("transport", "netsim", "netsim (event time), livenet (wall clock), or wire (TCP protocol path)")
	usersFlag := flag.String("users", "10000", "population sizes to sweep (comma-separated)")
	serversFlag := flag.String("servers", "8", "total server counts to sweep (comma-separated)")
	regions := flag.Int("regions", 4, "regions to spread servers across")
	seed := flag.Int64("seed", 1, "workload and fault-schedule seed")
	messages := flag.Int("messages", 5000, "message budget per run")
	sessions := flag.Int("sessions", 512, "concurrent closed-loop user sessions")
	ticks := flag.Int("ticks", 120, "minimum run horizon in schedule ticks")
	withFaults := flag.Bool("faults", false, "inject a compiled crash/link/latency/drop schedule")
	batchFlag := flag.String("batch", "", "relay batch sizes to sweep (comma-separated; netsim only; empty = unbatched)")
	flush := flag.Int("flush", 20, "relay batch flush interval in sim units (with -batch)")
	retry := flag.Int("retry", 0, "transfer ack retry timeout in sim units (0 = server default; set above the topology's ack round-trip for honest batch sweeps)")
	localBias := flag.Float64("localbias", 0, "probability a recipient is region-local (0 = workload default 0.8)")
	datadir := flag.String("datadir", "", "durable store root; each sweep point journals under its own subdirectory and reports WAL throughput plus recovery-replay time")
	fsyncFlag := flag.String("fsync", "never", "WAL fsync policy with -datadir: never|always")
	durabilityFlag := flag.String("durability", "", "durability sweep (comma-separated of off|never|always|chaos; requires -datadir): off = memory stores, never/always = durable with that fsync policy, chaos = durable fsync-never under a kill-restart fault schedule")
	protoFlag := flag.String("proto", "binary", "wire framings to sweep (comma-separated of text,binary; -transport wire only)")
	inflightFlag := flag.String("inflight", "8", "pipeline depths to sweep (comma-separated; -transport wire only)")
	policyFlag := flag.String("policy", "", "placement policies to sweep (comma-separated of static,jsq,rebalance; empty = legacy hard-wired placement)")
	jsqd := flag.Int("d", 2, "JSQ(d) sample width (with -policy jsq)")
	profileFlag := flag.String("profile", "", "workload profile: hotspot[:hosts[:frac%]], diurnal[:period], flash[:start:len] (empty = uniform)")
	srate := flag.Float64("srate", 0, "per-server service rate in deposits/tick for the congestion model (0 = derived from the message budget when -policy is set)")
	archFlag := flag.String("arch", "syntax", "architecture under test: syntax (§3.1 name-routed), roaming (§3.2 location-independent), attr (§3.3 attribute broadcast)")
	queries := flag.Int("queries", 0, "mass-distribution queries per run (0 = scenario default; -arch attr only)")
	noprune := flag.Bool("noprune", false, "disable sketch pruning of content queries — the exhaustive E21 baseline (-arch attr only)")
	sketchRefresh := flag.Int("sketchrefresh", 0, "refresh subtree sketches every N ticks instead of before each pruned launch; leaves stale windows that must fail open (-arch attr only)")
	appendDoc := flag.Bool("append", false, "append to an existing benchmark document instead of overwriting it")
	out := flag.String("o", "BENCH_PR4.json", "benchmark document path (empty = stdout)")
	flag.Parse()

	switch *archFlag {
	case "syntax", "roaming", "attr":
	default:
		fmt.Fprintf(os.Stderr, "mailbench: -arch: unknown architecture %q\n", *archFlag)
		os.Exit(2)
	}
	if *archFlag != "attr" && (*noprune || *sketchRefresh != 0) {
		fmt.Fprintf(os.Stderr, "mailbench: -noprune/-sketchrefresh require -arch attr\n")
		os.Exit(2)
	}
	if *archFlag != "syntax" {
		// The roaming and attr scenarios run on their own netsim worlds;
		// the syntax-only knobs have no meaning there.
		if *transport != "netsim" {
			fmt.Fprintf(os.Stderr, "mailbench: -arch %s requires -transport netsim\n", *archFlag)
			os.Exit(2)
		}
		for flagName, set := range map[string]bool{
			"-policy": *policyFlag != "", "-batch": *batchFlag != "",
			"-datadir": *datadir != "", "-durability": *durabilityFlag != "",
			"-profile": *profileFlag != "",
		} {
			if set {
				fmt.Fprintf(os.Stderr, "mailbench: %s is not supported with -arch %s\n", flagName, *archFlag)
				os.Exit(2)
			}
		}
	}

	profile, err := loadgen.ParseProfile(*profileFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mailbench: -profile:", err)
		os.Exit(2)
	}
	policySweep := []string{""}
	if *policyFlag != "" {
		policySweep = policySweep[:0]
		for _, v := range strings.Split(*policyFlag, ",") {
			name, err := placement.ParseName(strings.TrimSpace(v))
			if err != nil {
				fmt.Fprintln(os.Stderr, "mailbench: -policy:", err)
				os.Exit(2)
			}
			policySweep = append(policySweep, name)
		}
	}

	fsync, err := mailstore.ParseFsyncMode(*fsyncFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mailbench: -fsync:", err)
		os.Exit(2)
	}
	durSweep := []durPoint{{datadir: *datadir, fsync: fsync}}
	if *durabilityFlag != "" {
		if *datadir == "" {
			fmt.Fprintln(os.Stderr, "mailbench: -durability requires -datadir")
			os.Exit(2)
		}
		durSweep = durSweep[:0]
		for _, v := range strings.Split(*durabilityFlag, ",") {
			switch strings.TrimSpace(v) {
			case "off":
				durSweep = append(durSweep, durPoint{})
			case "never":
				durSweep = append(durSweep, durPoint{datadir: *datadir})
			case "always":
				durSweep = append(durSweep, durPoint{datadir: *datadir, fsync: mailstore.FsyncAlways})
			case "chaos":
				durSweep = append(durSweep, durPoint{datadir: *datadir, faults: true})
			default:
				fmt.Fprintf(os.Stderr, "mailbench: -durability: unknown point %q\n", v)
				os.Exit(2)
			}
		}
	}

	if *transport != "netsim" && *transport != "livenet" && *transport != "wire" {
		fmt.Fprintf(os.Stderr, "mailbench: unknown transport %q\n", *transport)
		os.Exit(2)
	}
	protoSweep, inflightSweep := []string{""}, []int{0}
	if *transport == "wire" {
		if *datadir != "" {
			fmt.Fprintln(os.Stderr, "mailbench: -datadir is not supported with -transport wire")
			os.Exit(2)
		}
		protoSweep = protoSweep[:0]
		for _, v := range strings.Split(*protoFlag, ",") {
			v = strings.TrimSpace(v)
			if v != "text" && v != "binary" {
				fmt.Fprintf(os.Stderr, "mailbench: -proto: unknown framing %q\n", v)
				os.Exit(2)
			}
			protoSweep = append(protoSweep, v)
		}
		if inflightSweep, err = parseInts(*inflightFlag); err != nil {
			fmt.Fprintln(os.Stderr, "mailbench: -inflight:", err)
			os.Exit(2)
		}
	}
	userSweep, err := parseInts(*usersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mailbench: -users:", err)
		os.Exit(2)
	}
	serverSweep, err := parseInts(*serversFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mailbench: -servers:", err)
		os.Exit(2)
	}
	batchSweep := []int{0}
	if *batchFlag != "" {
		// netsim: relay envelope size. wire: tbatch size in the throughput
		// burst (1 = single submit frames).
		if *transport == "livenet" {
			fmt.Fprintln(os.Stderr, "mailbench: -batch requires -transport netsim or wire")
			os.Exit(2)
		}
		if batchSweep, err = parseInts(*batchFlag); err != nil {
			fmt.Fprintln(os.Stderr, "mailbench: -batch:", err)
			os.Exit(2)
		}
	}

	doc := benchfmt.Doc{Goos: runtime.GOOS, Goarch: runtime.GOARCH}
	if *appendDoc && *out != "" {
		if buf, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(buf, &doc); err != nil {
				fmt.Fprintf(os.Stderr, "mailbench: -append: %s: %v\n", *out, err)
				os.Exit(2)
			}
		}
	}
	violations := 0
	for _, users := range userSweep {
		for _, servers := range serverSweep {
			for _, batch := range batchSweep {
				for _, dp := range durSweep {
					for _, proto := range protoSweep {
						for _, inflight := range inflightSweep {
							for _, pol := range policySweep {
								p := params{
									transport: *transport, users: users, servers: servers,
									regions: *regions, seed: *seed, messages: *messages,
									sessions: *sessions, ticks: *ticks,
									faults: *withFaults || dp.faults,
									batch:  batch, flush: *flush, retry: *retry, localBias: *localBias,
									datadir: dp.datadir, fsync: dp.fsync,
									proto: proto, inflight: inflight,
									policy: pol, jsqd: *jsqd,
									profile: profile, profStr: *profileFlag, srate: *srate,
									arch: *archFlag, queries: *queries,
									noprune: *noprune, sketchRefresh: *sketchRefresh,
								}
								var (
									res benchfmt.Result
									bad int
									err error
								)
								switch p.arch {
								case "roaming":
									res, bad, err = runRoaming(p)
								case "attr":
									res, bad, err = runAttr(p)
								default:
									res, bad, err = run(p)
								}
								if err != nil {
									fmt.Fprintln(os.Stderr, "mailbench:", err)
									os.Exit(1)
								}
								doc.Benchmarks = append(doc.Benchmarks, res)
								violations += bad
							}
						}
					}
				}
			}
		}
	}
	if err := doc.WriteFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, "mailbench: write:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Printf("wrote %d runs to %s\n", len(doc.Benchmarks), *out)
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "mailbench: %d auditor violations\n", violations)
		os.Exit(1)
	}
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad value %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// population derives the regional layout for a sweep point: servers spread
// across min(regions, servers) regions, trimming to an even split.
func population(p params) loadgen.Population {
	regions := p.regions
	if regions > p.servers {
		regions = p.servers
	}
	if regions < 1 {
		regions = 1
	}
	spr := p.servers / regions
	if spr*regions != p.servers {
		fmt.Fprintf(os.Stderr, "mailbench: %d servers do not split across %d regions; using %d\n",
			p.servers, regions, spr*regions)
	}
	return loadgen.Population{
		Users:            p.users,
		Regions:          regions,
		ServersPerRegion: spr,
	}
}

// faultProfile scales a standard chaos mix to the deployment size, using
// only the driver's safe fault surface. A durable driver additionally
// offers KillTargets; Compile requires the crash and kill pools to be
// disjoint (a Recover landing between a Kill and its Restart would revive a
// node whose store is torn down), so the fleet is split: the first half
// crashes, the second half kill-restarts from disk.
func faultProfile(drv loadgen.Driver, p params, ticks int) (*faults.Schedule, error) {
	return compileChaos(drv.FaultSurface(), p, ticks)
}

// compileChaos applies the standard size-scaled chaos mix to any fault
// surface (the attr scenario exposes one without being a loadgen.Driver).
func compileChaos(spec faults.Spec, p params, ticks int) (*faults.Schedule, error) {
	spec.Seed = p.seed
	spec.Ticks = ticks
	if len(spec.KillTargets) > 0 && len(spec.Servers) >= 2 {
		half := len(spec.Servers) / 2
		spec.KillTargets = append([]string(nil), spec.Servers[half:]...)
		spec.Servers = spec.Servers[:half]
		spec.KillRestarts = len(spec.KillTargets)/8 + 2
	}
	spec.Crashes = len(spec.Servers)/8 + 2
	spec.Latencies = len(spec.Servers)/16 + 1
	if len(spec.Links) > 0 {
		spec.LinkFaults = 2
	}
	if len(spec.DropTargets) > 0 {
		spec.Drops = 2
	}
	sched, err := faults.Compile(spec)
	if err != nil {
		return nil, fmt.Errorf("compile fault schedule: %w", err)
	}
	return &sched, nil
}

// runDataDir gives each sweep point its own durable root: sweep points
// differ in shard layout and server count, and a reused directory would
// either conflict on the manifest or replay a previous point's mail.
func runDataDir(p params) string {
	if p.datadir == "" {
		return ""
	}
	dir := fmt.Sprintf("%s_u%d_s%d_b%d_seed%d_fsync-%s_faults-%v",
		p.transport, p.users, p.servers, p.batch, p.seed, p.fsync, p.faults)
	if p.policy != "" {
		dir += "_policy-" + p.policy
	}
	return filepath.Join(p.datadir, dir)
}

// autoServiceRate derives a per-server deposit service rate from the run's
// message budget when -srate is unset: roughly twice the fleet-wide mean
// arrival rate, so a balanced run sits near ρ≈0.5 and only genuinely skewed
// servers saturate. The recipient draw averages ~1.6 copies per message.
func autoServiceRate(p params) float64 {
	rate := 2.0 * 1.6 * float64(p.messages) / (float64(p.ticks) * float64(p.servers))
	if rate < 0.5 {
		rate = 0.5
	}
	return rate
}

// run executes one sweep point and renders its report.
func run(p params) (benchfmt.Result, int, error) {
	pop := population(p)
	dataDir := runDataDir(p)
	var (
		drv   loadgen.Driver
		close func()
		scale float64
		unit  string
	)
	srate := p.srate
	if p.policy != "" && srate == 0 {
		srate = autoServiceRate(p)
	}
	var wireDrv *loadgen.WireDriver
	switch p.transport {
	case "wire":
		if p.policy != "" {
			return benchfmt.Result{}, 0, fmt.Errorf("-policy is not supported with -transport wire")
		}
		d, err := loadgen.NewWireDriver(loadgen.WireConfig{
			Pop:   pop,
			Proto: p.proto,
		})
		if err != nil {
			return benchfmt.Result{}, 0, err
		}
		wireDrv, drv, close = d, d, d.Close
		scale, unit = 1e6, "ms"
	case "netsim":
		d, err := loadgen.NewSimDriver(loadgen.SimConfig{
			Seed: p.seed, Pop: pop,
			BatchSize:     p.batch,
			FlushInterval: sim.Time(p.flush) * sim.Unit,
			RetryTimeout:  sim.Time(p.retry) * sim.Unit,
			DataDir:       dataDir, Fsync: p.fsync,
			Policy: p.policy, JSQD: p.jsqd, ServiceRate: srate,
		})
		if err != nil {
			return benchfmt.Result{}, 0, err
		}
		drv, close = d, func() { _ = d.Close() }
		scale, unit = float64(sim.Unit), "units"
	default:
		d, err := loadgen.NewLiveDriver(loadgen.LiveConfig{
			Pop:     pop,
			DataDir: dataDir, Fsync: p.fsync,
			Policy: p.policy, JSQD: p.jsqd, ServiceRate: srate,
		})
		if err != nil {
			return benchfmt.Result{}, 0, err
		}
		drv, close = d, d.Close
		scale, unit = 1e6, "ms"
	}
	defer close()

	cfg := loadgen.Config{
		Seed: p.seed, Messages: p.messages, Sessions: p.sessions, Ticks: p.ticks,
		Workload: loadgen.Workload{LocalBias: p.localBias},
		Profile:  p.profile,
	}
	if p.faults {
		sched, err := faultProfile(drv, p, p.ticks)
		if err != nil {
			return benchfmt.Result{}, 0, err
		}
		cfg.Schedule = sched
	}

	label := fmt.Sprintf("%s users=%d servers=%d faults=%v seed=%d",
		p.transport, p.users, p.servers, p.faults, p.seed)
	if p.transport == "wire" {
		label += fmt.Sprintf(" proto=%s inflight=%d batch=%d", p.proto, p.inflight, burstBatch(p))
	} else if p.batch > 0 {
		label += fmt.Sprintf(" batch=%d flush=%d", p.batch, p.flush)
	}
	if dataDir != "" {
		label += " durable fsync=" + p.fsync.String()
	}
	if p.policy != "" {
		label += " policy=" + p.policy
		if p.policy == placement.NameJSQ {
			label += fmt.Sprintf(" d=%d", p.jsqd)
		}
		label += fmt.Sprintf(" srate=%.2f", srate)
	}
	if p.profStr != "" {
		label += " profile=" + p.profStr
	}
	fmt.Printf("=== %s\n", label)
	start := time.Now()
	rep := loadgen.New(drv, cfg).Run()
	elapsed := time.Since(start)

	fmt.Printf("submitted %d messages (%d copies) in %d ticks, %d retrievals, "+
		"%d polls, %d dup-suppressed — %s wall\n",
		rep.Submitted, rep.Copies, rep.Ticks, rep.Retrievals, rep.Polls,
		rep.Duplicates, elapsed.Round(time.Millisecond))

	snap := drv.Snapshot()
	fmt.Print(snap.LatencyTable("stage latency", scale, unit).Render())
	printUtilization(rep.Loads)
	if env := counterSum(snap, "relay_envelopes"); env > 0 {
		xfers := counterSum(snap, "transfers_out")
		fmt.Printf("relay: %.0f envelopes carried %.0f transfers (%.1f msgs/envelope), %.0f splits\n",
			env, xfers, xfers/env, counterSum(snap, "batch_splits"))
	}
	if p.policy != "" {
		// The migration counters live un-prefixed in the driver registry, not
		// under a per-server name — read them directly.
		rhoMean, rhoMax := rhoGaugeStats(snap)
		fmt.Printf("balance: policy=%s, %d migrations moved %.0f messages, "+
			"%.0f deposits rerouted (%.0f loop-dropped), observed ρ mean %.3f max %.3f\n",
			p.policy, snap.Counters["migrations_total"],
			float64(snap.Counters["migration_cost"]),
			counterSum(snap, "deposit_reroutes"), counterSum(snap, "reroute_loops_dropped"),
			rhoMean, rhoMax)
	}

	bad := 0
	if !rep.Ok {
		for k, v := range rep.Violations {
			bad += v
			fmt.Printf("VIOLATION %s: %d\n", k, v)
		}
		for _, ex := range rep.Examples {
			fmt.Printf("  e.g. %s\n", ex)
		}
	} else {
		fmt.Println("auditors: clean (exactly-once, no-loss, monotone LCT, poll efficiency)")
	}
	fmt.Println()

	m := metrics(rep, snap, elapsed, scale)
	if p.policy != "" {
		m["migrations"] = float64(rep.Migrations)
		m["migrations_total"] = float64(snap.Counters["migrations_total"])
		m["migration_cost"] = float64(snap.Counters["migration_cost"])
		m["deposit_reroutes"] = counterSum(snap, "deposit_reroutes")
		m["reroute_loops_dropped"] = counterSum(snap, "reroute_loops_dropped")
		m["rho_obs_mean"], m["rho_obs_max"] = rhoGaugeStats(snap)
		m["srate"] = srate
	}
	if wireDrv != nil {
		if err := wireBurst(wireDrv.Addr(), p, m); err != nil {
			return benchfmt.Result{}, 0, fmt.Errorf("wire burst: %w", err)
		}
		fmt.Printf("wire burst: %.0f msgs/s, %.1f allocs/msg (%s, inflight=%d, batch=%d, %.0fB bodies)\n",
			m["wire_msgs_per_sec"], m["wire_allocs_per_msg"],
			p.proto, p.inflight, burstBatch(p), m["wire_body_bytes"])
	}
	if ds, ok := drv.(interface {
		DurabilityStats() (mailstore.WALStats, bool)
	}); ok {
		if ws, on := ds.DurabilityStats(); on {
			addWALMetrics(m, ws)
			fmt.Printf("wal: %d appends, %.1f MB, %.1f MB/s append path, %d syncs, %d rotations, %d compactions\n",
				ws.Appends, float64(ws.Bytes)/1e6, m["wal_append_mbps"],
				ws.Syncs, ws.Rotations, ws.Compactions)
		}
	}
	if dataDir != "" {
		close() // sync and release every store before reopening its directory
		if err := measureRecovery(dataDir, m); err != nil {
			return benchfmt.Result{}, 0, fmt.Errorf("recovery replay: %w", err)
		}
		fmt.Printf("recovery: replayed %.0f records (%.0f live messages, %.0f mailboxes) across %d stores in %.1f ms\n",
			m["recovered_records"], m["recovered_msgs"], m["recovered_mailboxes"],
			int(m["recovered_stores"]), m["recovery_ms"])
	}

	res := benchfmt.Result{
		Name:       benchName(p),
		Pkg:        "cmd/mailbench",
		Iterations: 1,
		Metrics:    m,
	}
	return res, bad, nil
}

// runRoaming executes one §3.2 sweep point: the locind-backed RoamDriver
// under the closed-loop engine, with roam waves and live rehash
// reconfiguration layered on top and the §3.2.2c overhead auditor online.
func runRoaming(p params) (benchfmt.Result, int, error) {
	pop := population(p)
	drv, err := loadgen.NewRoamDriver(loadgen.RoamConfig{Seed: p.seed, Pop: pop})
	if err != nil {
		return benchfmt.Result{}, 0, err
	}
	cfg := loadgen.Config{
		Seed: p.seed, Messages: p.messages, Sessions: p.sessions, Ticks: p.ticks,
	}
	if p.faults {
		sched, err := faultProfile(drv, p, p.ticks)
		if err != nil {
			return benchfmt.Result{}, 0, err
		}
		cfg.Schedule = sched
	}

	fmt.Printf("=== roaming users=%d servers=%d faults=%v seed=%d\n",
		p.users, p.servers, p.faults, p.seed)
	start := time.Now()
	// RehashEvery 7 keeps the live rehash off-phase with the engine's
	// retrieval sweep (period 4), so reconfiguration hits loaded mailboxes.
	rep := loadgen.RunRoamScenario(drv, cfg, loadgen.RoamScenarioConfig{
		Seed:        p.seed,
		RehashEvery: 7,
	})
	elapsed := time.Since(start)

	fmt.Printf("submitted %d messages (%d copies) in %d ticks, %d retrievals, "+
		"%d polls, %d dup-suppressed — %s wall\n",
		rep.Submitted, rep.Copies, rep.Ticks, rep.Retrievals, rep.Polls,
		rep.Duplicates, elapsed.Round(time.Millisecond))

	snap := drv.Snapshot()
	fmt.Print(snap.LatencyTable("stage latency", float64(sim.Unit), "units").Render())
	printUtilization(rep.Loads)
	fmt.Printf("roaming: %d logins, %d consultations, %d roam alerts, "+
		"%d rehash transfers moved %d deposits, %d deposit transfers\n",
		snap.Counters["logins"], snap.Counters["consultations"],
		snap.Counters["notify_roaming"], snap.Counters["rehash_transfers"],
		snap.Counters["rehash_messages_moved"], snap.Counters["deposit_transfers"])

	bad := reportAudit(rep.Ok, rep.Violations, rep.Examples,
		"auditors: clean (exactly-once across roams, no-loss, §3.2.2c overhead-only-off-primary)")

	m := metrics(rep, snap, elapsed, float64(sim.Unit))
	for _, k := range []string{
		"logins", "consultations", "notify_home", "notify_roaming",
		"notify_probe_primary", "rehash_transfers", "rehash_messages_moved",
		"deposit_transfers", "deposit_reroutes",
	} {
		m[k] = float64(snap.Counters[k])
	}
	return benchfmt.Result{
		Name:       benchName(p),
		Pkg:        "cmd/mailbench",
		Iterations: 1,
		Metrics:    m,
	}, bad, nil
}

// runAttr executes one §3.3 sweep point: mass distribution over the
// backbone-MST with convergecast aggregation and term-index content
// retrieval, audited for loss, bounded completion, and flagged partials.
func runAttr(p params) (benchfmt.Result, int, error) {
	pop := population(p)
	s, err := loadgen.NewAttrScenario(loadgen.AttrConfig{
		Seed: p.seed, Pop: pop, Queries: p.queries, Ticks: p.ticks,
		DisablePrune: p.noprune, SketchRefreshEvery: p.sketchRefresh,
	})
	if err != nil {
		return benchfmt.Result{}, 0, err
	}
	if p.faults {
		sched, err := compileChaos(s.FaultSurface(), p, p.ticks)
		if err != nil {
			return benchfmt.Result{}, 0, err
		}
		s.SetSchedule(sched)
	}

	fmt.Printf("=== attr users=%d servers=%d faults=%v seed=%d prune=%v sketchrefresh=%d\n",
		p.users, p.servers, p.faults, p.seed, !p.noprune, p.sketchRefresh)
	start := time.Now()
	rep := s.Run()
	elapsed := time.Since(start)

	fmt.Printf("%d distribution queries (%d copies delivered), %d content "+
		"searches, %d partial summaries, %d skipped, depth ≤ %d, %d ticks — %s wall\n",
		rep.Queries, rep.Deliveries, rep.ContentQueries, rep.Partial,
		rep.Skipped, rep.MaxDepth, rep.Ticks, elapsed.Round(time.Millisecond))
	if rep.ContentQueries > 0 {
		fmt.Printf("content fan-out: %d/%d mailboxes visited (%.1f%%), %d subtrees/%d nodes pruned, "+
			"%d sketch FPs, %d stale fail-opens, %d refreshes\n",
			rep.CQMailboxes, rep.CQMailboxesFull, pct(rep.CQMailboxes, rep.CQMailboxesFull),
			rep.PrunedSubtrees, rep.PrunedNodes, rep.SketchFP, rep.StaleOpen, rep.Refreshes)
	}

	snap := s.Snapshot()
	// The attr scenario observes its latencies pre-scaled to sim units.
	fmt.Print(snap.LatencyTable("broadcast latency", 1, "units").Render())

	bad := reportAudit(rep.Ok, rep.Violations, rep.Examples,
		"auditors: clean (no lost broadcast deliveries, bounded convergecast, partials flagged)")

	m := map[string]float64{
		"queries":         float64(rep.Queries),
		"content_queries": float64(rep.ContentQueries),
		"deliveries":      float64(rep.Deliveries),
		"partial":         float64(rep.Partial),
		"skipped":         float64(rep.Skipped),
		"max_depth":       float64(rep.MaxDepth),
		"ticks":           float64(rep.Ticks),
		"violations":      0,
		"ns/op":           float64(elapsed.Nanoseconds()),
		"bcast_deposits":  float64(snap.Counters["bcast_deposits"]),

		"attr_pruned_subtrees": float64(rep.PrunedSubtrees),
		"attr_pruned_nodes":    float64(rep.PrunedNodes),
		"attr_visited_nodes":   float64(rep.VisitedNodes),
		"attr_sketch_fp":       float64(rep.SketchFP),
		"attr_stale_open":      float64(rep.StaleOpen),
		"sketch_refreshes":     float64(rep.Refreshes),
		"cq_mailboxes":         float64(rep.CQMailboxes),
		"cq_mailboxes_full":    float64(rep.CQMailboxesFull),
	}
	if rep.CQMailboxesFull > 0 {
		m["cq_visit_ratio"] = float64(rep.CQMailboxes) / float64(rep.CQMailboxesFull)
	}
	for _, v := range rep.Violations {
		m["violations"] += float64(v)
	}
	addLatencyMetrics(m, snap, 1)
	return benchfmt.Result{
		Name:       benchName(p),
		Pkg:        "cmd/mailbench",
		Iterations: 1,
		Metrics:    m,
	}, bad, nil
}

// pct renders a/b as a percentage, 0 when b is zero.
func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// reportAudit prints the auditor verdict and returns the violation total.
func reportAudit(ok bool, violations map[string]int, examples []string, cleanMsg string) int {
	bad := 0
	if ok {
		fmt.Println(cleanMsg)
		fmt.Println()
		return 0
	}
	for k, v := range violations {
		bad += v
		fmt.Printf("VIOLATION %s: %d\n", k, v)
	}
	for _, ex := range examples {
		fmt.Printf("  e.g. %s\n", ex)
	}
	fmt.Println()
	return bad
}

// burstBatch is the tbatch size the wire throughput burst uses (the -batch
// knob; 0/unset means single submit frames).
func burstBatch(p params) int {
	if p.batch < 1 {
		return 1
	}
	return p.batch
}

// wireBurst measures the raw wire path after the audited run: a fresh
// client on the same server, a pipelined window of p.inflight requests,
// 512-byte bodies, burstBatch messages per frame. Client and server share
// the process, so allocs/msg covers the whole encode→decode→deposit→respond
// path — exactly the allocations the binary framing is meant to remove.
func wireBurst(addr string, p params, m map[string]float64) error {
	const (
		burstMsgs = 8000
		warmup    = 400
		bodySize  = 512
	)
	c, err := wire.DialOptions(addr, wire.Options{TextOnly: p.proto == "text"})
	if err != nil {
		return err
	}
	defer c.Close()
	from := "R0.h1.benchsender"
	if err := c.Register(from, "S0"); err != nil {
		return err
	}
	// Spread deposits over several sink mailboxes: one mailbox absorbing
	// the whole burst measures slice-growth pathology, not the wire path.
	const sinks = 16
	tos := make([][]string, sinks)
	for i := range tos {
		u := fmt.Sprintf("R0.h1.benchsink%d", i)
		if err := c.Register(u, fmt.Sprintf("S%d", i%p.servers)); err != nil {
			return err
		}
		tos[i] = []string{u}
	}
	pl, err := c.Pipeline(context.Background(), p.inflight)
	if err != nil {
		return err
	}
	if p.proto == "binary" && !c.BinaryFraming() {
		return fmt.Errorf("server declined binary framing")
	}
	batch := burstBatch(p)
	body := strings.Repeat("m", bodySize)
	pending := make([]int, sinks) // deposits per sink since its last drain
	send := func(n int) ([]*wire.Future, int) {
		futs := make([]*wire.Future, 0, n/batch+1)
		sent := 0
		for sent < n {
			si := (sent / batch) % sinks
			to := tos[si]
			if batch == 1 {
				futs = append(futs, pl.Submit(from, to, "b", body))
				sent++
			} else {
				msgs := make([]wire.BatchMsg, batch)
				for i := range msgs {
					msgs[i] = wire.BatchMsg{To: to, Subject: "b", Body: body}
				}
				futs = append(futs, pl.SubmitBatch(from, msgs))
				sent += batch
			}
			// Recipients read their mail: drain each sink every 64 deposits
			// so mailboxes stay bounded, as in any live system.
			if pending[si] += batch; pending[si] >= 64 {
				pending[si] = 0
				futs = append(futs, pl.Do(wire.Request{Op: "getmail", User: to[0]}))
			}
		}
		return futs, sent
	}
	reap := func(futs []*wire.Future) error {
		for _, f := range futs {
			if _, err := f.Response(); err != nil {
				return err
			}
		}
		return nil
	}
	wfuts, _ := send(warmup)
	if err := reap(wfuts); err != nil {
		return err
	}
	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	futs, sent := send(burstMsgs)
	reapErr := reap(futs)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	if reapErr != nil {
		return reapErr
	}
	if err := pl.Close(); err != nil {
		return err
	}
	m["wire_msgs_per_sec"] = float64(sent) / elapsed.Seconds()
	m["wire_allocs_per_msg"] = float64(ms1.Mallocs-ms0.Mallocs) / float64(sent)
	m["wire_burst_msgs"] = float64(sent)
	m["wire_body_bytes"] = bodySize
	return nil
}

// addWALMetrics flattens the summed WAL counters into the metric map.
func addWALMetrics(m map[string]float64, ws mailstore.WALStats) {
	m["wal_appends"] = float64(ws.Appends)
	m["wal_mb"] = float64(ws.Bytes) / 1e6
	m["wal_syncs"] = float64(ws.Syncs)
	m["wal_rotations"] = float64(ws.Rotations)
	m["wal_compactions"] = float64(ws.Compactions)
	if ws.AppendNs > 0 {
		m["wal_append_mbps"] = float64(ws.Bytes) * 1e3 / float64(ws.AppendNs)
	}
}

// measureRecovery reopens every per-server store directory under dataDir —
// the cold-start path a restarted deployment takes — and records the total
// replay wall time and recovered state in the metric map.
func measureRecovery(dataDir string, m map[string]float64) error {
	entries, err := os.ReadDir(dataDir)
	if err != nil {
		return err
	}
	start := time.Now()
	var msgs, boxes, records, stores float64
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		st, err := mailstore.Open(filepath.Join(dataDir, e.Name()), 0)
		if err != nil {
			return fmt.Errorf("reopen %s: %w", e.Name(), err)
		}
		if rs, ok := st.RecoveryStats(); ok {
			msgs += float64(rs.Messages)
			boxes += float64(rs.Mailboxes)
			records += float64(rs.Records)
		}
		if err := st.Close(); err != nil {
			return err
		}
		stores++
	}
	m["recovery_ms"] = float64(time.Since(start).Nanoseconds()) / 1e6
	m["recovered_msgs"] = msgs
	m["recovered_mailboxes"] = boxes
	m["recovered_records"] = records
	m["recovered_stores"] = stores
	return nil
}

func benchName(p params) string {
	name := fmt.Sprintf("Mailbench/%s/users=%d/servers=%d", p.transport, p.users, p.servers)
	if p.arch != "" && p.arch != "syntax" {
		name += "/arch=" + p.arch
	}
	if p.noprune {
		name += "/noprune"
	}
	if p.sketchRefresh > 0 {
		name += fmt.Sprintf("/sketchrefresh=%d", p.sketchRefresh)
	}
	if p.transport == "wire" {
		name += fmt.Sprintf("/proto=%s/inflight=%d/batch=%d", p.proto, p.inflight, burstBatch(p))
	} else if p.batch > 0 {
		name += fmt.Sprintf("/batch=%d", p.batch)
	}
	if p.faults {
		name += "/faults"
	}
	if p.datadir != "" {
		name += "/durable/fsync=" + p.fsync.String()
	}
	if p.policy != "" {
		name += "/policy=" + p.policy
		if p.policy == placement.NameJSQ {
			name += fmt.Sprintf("/d=%d", p.jsqd)
		}
	}
	if p.profStr != "" {
		name += "/profile=" + strings.ReplaceAll(p.profStr, ":", "-")
	}
	return name
}

// rhoGaugeStats summarizes the per-server peak-ρ gauges an active placement
// policy publishes (fixed-point, placement.RhoScale per unit). Peaks, not the
// live ρ: by the time the run's final snapshot is taken the drain phase has
// decayed every arrival EWMA to zero.
func rhoGaugeStats(snap obs.Snapshot) (mean, max float64) {
	n := 0
	for k, v := range snap.Gauges {
		if !strings.HasSuffix(k, ".rho_peak") {
			continue
		}
		rho := float64(v) / placement.RhoScale
		mean += rho
		if rho > max {
			max = rho
		}
		n++
	}
	if n > 0 {
		mean /= float64(n)
	}
	return mean, max
}

// counterSum reads a logical counter from the snapshot: the netsim driver
// publishes summed per-server counters under a "srv_" prefix, the live
// cluster publishes per-server "<name>.<counter>" entries.
func counterSum(snap obs.Snapshot, name string) float64 {
	if v, ok := snap.Counters["srv_"+name]; ok {
		return float64(v)
	}
	var sum int64
	for k, v := range snap.Counters {
		if strings.HasSuffix(k, "."+name) {
			sum += v
		}
	}
	return float64(sum)
}

// printUtilization renders predicted vs observed load per server (full
// table for small fleets, aggregate always).
func printUtilization(loads []loadgen.ServerLoad) {
	if len(loads) == 0 {
		return
	}
	var deposits int64
	var totalLoad int
	maxRho, sumRho := 0.0, 0.0
	for _, l := range loads {
		deposits += l.Deposits
		totalLoad += l.Load
		sumRho += l.Rho
		if l.Rho > maxRho {
			maxRho = l.Rho
		}
	}
	if len(loads) <= 16 {
		t := obs.NewTable("utilization vs Q(ρ)", "server", "region", "load", "max", "ρ", "Q(ρ)", "deposits")
		for _, l := range loads {
			t.AddRow(l.Name, l.Region, l.Load, l.MaxLoad,
				fmt.Sprintf("%.3f", l.Rho), fmt.Sprintf("%.3f", l.QWait), l.Deposits)
		}
		fmt.Print(t.Render())
	}
	fmt.Printf("utilization: mean ρ %.3f, max ρ %.3f, predicted-vs-observed share error %.4f\n",
		sumRho/float64(len(loads)), maxRho, shareError(loads, totalLoad, deposits))
}

// shareError is the max over servers of |observed deposit share − predicted
// load share| — how far the run's actual traffic drifted from the §3.1.1
// balance the Q(ρ) predictions assume.
func shareError(loads []loadgen.ServerLoad, totalLoad int, deposits int64) float64 {
	if totalLoad == 0 || deposits == 0 {
		return 0
	}
	worst := 0.0
	for _, l := range loads {
		diff := float64(l.Deposits)/float64(deposits) - float64(l.Load)/float64(totalLoad)
		if diff < 0 {
			diff = -diff
		}
		if diff > worst {
			worst = diff
		}
	}
	return worst
}

// metrics flattens the run into the benchmark document's metric map. Stage
// latencies are reported in the transport's table unit (sim units / ms).
func metrics(rep loadgen.Report, snap obs.Snapshot, elapsed time.Duration, scale float64) map[string]float64 {
	m := map[string]float64{
		"messages":   float64(rep.Submitted),
		"copies":     float64(rep.Copies),
		"retrievals": float64(rep.Retrievals),
		"polls":      float64(rep.Polls),
		"dups":       float64(rep.Duplicates),
		"ticks":      float64(rep.Ticks),
		"violations": 0,
		"ns/op":      float64(elapsed.Nanoseconds()),
	}
	for _, v := range rep.Violations {
		m["violations"] += float64(v)
	}
	if rep.Retrievals > 0 {
		m["polls_per_retrieval"] = float64(rep.Polls) / float64(rep.Retrievals)
	}
	if env := counterSum(snap, "relay_envelopes"); env > 0 {
		m["relay_envelopes"] = env
		m["transfers_out"] = counterSum(snap, "transfers_out")
		m["batch_splits"] = counterSum(snap, "batch_splits")
		m["msgs_per_envelope"] = m["transfers_out"] / env
	}
	addLatencyMetrics(m, snap, scale)
	var deposits int64
	var totalLoad int
	maxRho, sumRho, maxQ := 0.0, 0.0, 0.0
	for _, l := range rep.Loads {
		deposits += l.Deposits
		totalLoad += l.Load
		sumRho += l.Rho
		if l.Rho > maxRho {
			maxRho = l.Rho
		}
		if l.QWait > maxQ {
			maxQ = l.QWait
		}
	}
	if n := len(rep.Loads); n > 0 {
		m["rho_mean"] = sumRho / float64(n)
		m["rho_max"] = maxRho
		m["q_wait_max"] = maxQ
		m["util_share_err"] = shareError(rep.Loads, totalLoad, deposits)
	}
	return m
}

// addLatencyMetrics flattens every non-empty histogram's quantiles into the
// metric map, scaled to the transport's table unit.
func addLatencyMetrics(m map[string]float64, snap obs.Snapshot, scale float64) {
	names := make([]string, 0, len(snap.Histograms))
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Histograms[n]
		if h.Count == 0 {
			continue
		}
		m[n+"_p50"] = h.P50 / scale
		m[n+"_p95"] = h.P95 / scale
		m[n+"_p99"] = h.P99 / scale
	}
}
