package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunExample(t *testing.T) {
	if err := run([]string{"-example"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBatched(t *testing.T) {
	if err := run([]string{"-example", "-batch", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunGenerated(t *testing.T) {
	if err := run([]string{"-gen", "120", "-servers", "6", "-users", "4000", "-seed", "3", "-batch", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunGeneratedBadServers(t *testing.T) {
	if err := run([]string{"-gen", "10", "-servers", "10"}); err == nil {
		t.Error("servers >= nodes accepted")
	}
}

func TestRunNoInput(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing input accepted")
	}
}

func TestRunJSONInstance(t *testing.T) {
	const instance = `{
	  "nodes": [
	    {"id": 1, "label": "H1", "kind": "host"},
	    {"id": 2, "label": "H2", "kind": "host"},
	    {"id": 101, "label": "S1", "kind": "server"},
	    {"id": 102, "label": "S2", "kind": "server"}
	  ],
	  "edges": [
	    {"a": 1, "b": 101, "weight": 1},
	    {"a": 2, "b": 102, "weight": 1},
	    {"a": 101, "b": 102, "weight": 1}
	  ],
	  "users": {"1": 80, "2": 10},
	  "maxLoad": {"101": 60, "102": 60}
	}`
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := os.WriteFile(path, []byte(instance), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-f", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-f", path}); err == nil {
		t.Error("bad JSON accepted")
	}
	if err := run([]string{"-f", filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Error("missing file accepted")
	}
}
