// Command balance runs the §3.1.1 server-assignment / load-balancing
// algorithm on a topology described in JSON and prints the assignment tables
// before and after balancing.
//
// Usage:
//
//	balance -example            # the paper's Figure 1 instance
//	balance -f instance.json    # a custom instance
//	balance -batch 10 -example  # the accelerated multi-user-move variant
//	balance -gen 2000 -servers 24 -users 100000 -seed 7 -batch 10
//	                            # a generated large instance (summary output)
//
// Instance JSON:
//
//	{
//	  "nodes":  [{"id": 1, "label": "H1", "kind": "host"},
//	             {"id": 101, "label": "S1", "kind": "server"}],
//	  "edges":  [{"a": 1, "b": 101, "weight": 1}],
//	  "users":  {"1": 50},
//	  "maxLoad": {"101": 100}
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"time"

	"github.com/largemail/largemail/internal/assign"
	"github.com/largemail/largemail/internal/graph"
)

type instanceJSON struct {
	Nodes []struct {
		ID     graph.NodeID `json:"id"`
		Label  string       `json:"label"`
		Region string       `json:"region"`
		Kind   string       `json:"kind"`
	} `json:"nodes"`
	Edges []struct {
		A      graph.NodeID `json:"a"`
		B      graph.NodeID `json:"b"`
		Weight float64      `json:"weight"`
	} `json:"edges"`
	Users   map[string]int `json:"users"`
	MaxLoad map[string]int `json:"maxLoad"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "balance:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("balance", flag.ContinueOnError)
	example := fs.Bool("example", false, "run the paper's Figure 1 instance")
	file := fs.String("f", "", "instance JSON file")
	batch := fs.Int("batch", 1, "users moved per balancing step (paper's speedup)")
	authLen := fs.Int("authority", 2, "authority-list length to print")
	gen := fs.Int("gen", 0, "generate a random connected topology with this many nodes")
	genServers := fs.Int("servers", 8, "servers in the generated topology")
	genUsers := fs.Int("users", 10000, "total users spread over the generated hosts")
	seed := fs.Int64("seed", 1, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg assign.Config
	switch {
	case *gen > 0:
		var err error
		cfg, err = genInstance(*gen, *genServers, *genUsers, *seed)
		if err != nil {
			return err
		}
	case *example:
		ex := graph.Figure1()
		commW, procW, procTime := assign.PaperWeights()
		maxLoad := make(map[graph.NodeID]int)
		for _, s := range ex.Servers {
			maxLoad[s] = 100
		}
		cfg = assign.Config{
			Topology: ex.G, Hosts: ex.Hosts, Servers: ex.Servers,
			Users: ex.Users, MaxLoad: maxLoad,
			ProcTime: procTime, CommW: commW, ProcW: procW,
		}
	case *file != "":
		var err error
		cfg, err = loadInstance(*file)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -example or -f instance.json")
	}
	cfg.MoveBatch = *batch

	start := time.Now()
	a, err := assign.New(cfg)
	if err != nil {
		return err
	}
	build := time.Since(start)

	// Generated instances are too big for the full tables — print a summary.
	if len(cfg.Hosts) > 40 {
		start = time.Now()
		stats := a.Run()
		fmt.Printf("instance: %d hosts, %d servers, %d users, batch %d\n",
			len(cfg.Hosts), len(cfg.Servers), totalUsers(cfg), cfg.MoveBatch)
		fmt.Printf("construction (validate + parallel Dijkstra fan-out): %v\n", build)
		fmt.Printf("initialize + balance: %v\n", time.Since(start))
		fmt.Printf("total cost %.2f, max utilisation %.3f\n", a.TotalCost(), a.MaxUtilization())
		fmt.Printf("sweeps %d, moves %d (users %d), undone %d, overloaded %d servers\n",
			stats.Sweeps, stats.Moves, stats.UsersMoved, stats.Undone, len(stats.Overloaded))
		return nil
	}

	a.Initialize()
	fmt.Print(a.Table("Initial assignment (nearest server)").Render())
	fmt.Printf("total cost %.2f, max utilisation %.3f\n\n", a.TotalCost(), a.MaxUtilization())

	stats := a.Balance()
	fmt.Print(a.Table("After balancing").Render())
	fmt.Printf("total cost %.2f, max utilisation %.3f\n", a.TotalCost(), a.MaxUtilization())
	fmt.Printf("sweeps %d, moves %d (users %d), undone %d, overloaded %v\n",
		stats.Sweeps, stats.Moves, stats.UsersMoved, stats.Undone, stats.Overloaded)

	fmt.Println("\nAuthority lists (primary first):")
	lists := a.AuthorityLists(*authLen)
	for _, h := range cfg.Hosts {
		fmt.Printf("  host %v → %v\n", h, lists[h])
	}
	return nil
}

func totalUsers(cfg assign.Config) int {
	total := 0
	for _, n := range cfg.Users {
		total += n
	}
	return total
}

// genInstance builds a random connected instance: the first k node IDs are
// the servers, the rest are hosts sharing users total users, and every
// server gets capacity for its fair share plus a third of slack.
func genInstance(nodes, k, users int, seed int64) (assign.Config, error) {
	if k < 1 || k >= nodes {
		return assign.Config{}, fmt.Errorf("-servers %d must be in [1, nodes)", k)
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomConnected(rng, nodes, 3*nodes, 1)
	ids := g.NodeIDs()
	servers := ids[:k]
	hosts := ids[k:]
	userMap := make(map[graph.NodeID]int, len(hosts))
	per := users / len(hosts)
	rem := users % len(hosts)
	for i, h := range hosts {
		userMap[h] = per
		if i < rem {
			userMap[h]++
		}
	}
	maxLoad := make(map[graph.NodeID]int, k)
	for _, s := range servers {
		maxLoad[s] = users/k + users/(3*k) + 1
	}
	commW, procW, procTime := assign.PaperWeights()
	return assign.Config{
		Topology: g, Hosts: hosts, Servers: servers,
		Users: userMap, MaxLoad: maxLoad,
		ProcTime: procTime, CommW: commW, ProcW: procW,
	}, nil
}

func loadInstance(path string) (assign.Config, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return assign.Config{}, err
	}
	var in instanceJSON
	if err := json.Unmarshal(raw, &in); err != nil {
		return assign.Config{}, fmt.Errorf("parse %s: %w", path, err)
	}
	g := graph.New()
	var hosts, servers []graph.NodeID
	for _, n := range in.Nodes {
		var kind graph.Kind
		switch n.Kind {
		case "host":
			kind = graph.KindHost
			hosts = append(hosts, n.ID)
		case "server":
			kind = graph.KindServer
			servers = append(servers, n.ID)
		default:
			kind = graph.KindRouter
		}
		if err := g.AddNode(graph.Node{ID: n.ID, Label: n.Label, Region: n.Region, Kind: kind}); err != nil {
			return assign.Config{}, err
		}
	}
	for _, e := range in.Edges {
		if err := g.AddEdge(e.A, e.B, e.Weight); err != nil {
			return assign.Config{}, err
		}
	}
	users := make(map[graph.NodeID]int)
	for k, v := range in.Users {
		id, err := strconv.Atoi(k)
		if err != nil {
			return assign.Config{}, fmt.Errorf("users key %q: %w", k, err)
		}
		users[graph.NodeID(id)] = v
	}
	maxLoad := make(map[graph.NodeID]int)
	for k, v := range in.MaxLoad {
		id, err := strconv.Atoi(k)
		if err != nil {
			return assign.Config{}, fmt.Errorf("maxLoad key %q: %w", k, err)
		}
		maxLoad[graph.NodeID(id)] = v
	}
	commW, procW, procTime := assign.PaperWeights()
	return assign.Config{
		Topology: g, Hosts: hosts, Servers: servers,
		Users: users, MaxLoad: maxLoad,
		ProcTime: procTime, CommW: commW, ProcW: procW,
	}, nil
}
