package main

import (
	"testing"

	"github.com/largemail/largemail/internal/wire"
)

func TestCommandsAgainstLiveServer(t *testing.T) {
	srv, err := wire.NewServer("127.0.0.1:0", []string{"s1", "s2"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()
	steps := [][]string{
		{"-addr", addr, "register", "R1.h1.alice"},
		{"-addr", addr, "register", "R1.h2.bob", "s2", "s1"},
		{"-addr", addr, "submit", "R1.h2.bob", "R1.h1.alice", "subj", "body"},
		{"-addr", addr, "status"},
		{"-addr", addr, "getmail", "R1.h1.alice"},
		{"-addr", addr, "getmail", "R1.h1.alice"}, // "no new mail" path
		{"-addr", addr, "crash", "s1"},
		{"-addr", addr, "recover", "s1"},
	}
	for _, args := range steps {
		if err := run(args); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	srv, err := wire.NewServer("127.0.0.1:0", []string{"s1"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()
	for _, args := range [][]string{
		{"-addr", addr},
		{"-addr", addr, "register"},
		{"-addr", addr, "submit", "a"},
		{"-addr", addr, "getmail"},
		{"-addr", addr, "crash"},
		{"-addr", addr, "frobnicate"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want usage error", args)
		}
	}
}

func TestDialFailure(t *testing.T) {
	if err := run([]string{"-addr", "127.0.0.1:1", "status"}); err == nil {
		t.Error("unreachable daemon accepted")
	}
}
