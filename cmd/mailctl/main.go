// Command mailctl is the command-line client for maild's wire protocol.
//
// Usage:
//
//	mailctl -addr 127.0.0.1:7425 register R1.h1.alice [s1 s2]
//	mailctl -timeout 2s submit R1.h2.bob R1.h1.alice "subject" "body"
//	mailctl getmail R1.h1.alice
//	mailctl query "content=budget"
//	mailctl status [-json]
//	mailctl crash s1 | recover s1
//
// status renders the cluster's versioned observability snapshot: per-server
// rows, counters/gauges, and per-stage latency quantiles. With -json the raw
// snapshot is printed instead, for scripting.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/largemail/largemail/internal/obs"
	"github.com/largemail/largemail/internal/placement"
	"github.com/largemail/largemail/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mailctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mailctl", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7425", "maild address")
	timeout := fs.Duration("timeout", 0, "overall deadline for the command (0 = the client's per-attempt default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("need a command: register | submit | getmail | query | status | crash | recover")
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	c, err := wire.Dial(*addr)
	if err != nil {
		return err
	}
	defer c.Close()

	switch cmd := rest[0]; cmd {
	case "register":
		if len(rest) < 2 {
			return fmt.Errorf("usage: register <user> [servers...]")
		}
		if err := c.RegisterContext(ctx, rest[1], rest[2:]...); err != nil {
			return err
		}
		fmt.Println("registered", rest[1])
	case "submit":
		if len(rest) < 5 {
			return fmt.Errorf("usage: submit <from> <to> <subject> <body>")
		}
		id, err := c.SubmitContext(ctx, rest[1], []string{rest[2]}, rest[3], rest[4])
		if err != nil {
			return err
		}
		fmt.Println("accepted", id)
	case "getmail":
		if len(rest) != 2 {
			return fmt.Errorf("usage: getmail <user>")
		}
		msgs, err := c.GetMailContext(ctx, rest[1])
		if err != nil {
			return err
		}
		if len(msgs) == 0 {
			fmt.Println("no new mail")
			return nil
		}
		for _, m := range msgs {
			fmt.Printf("%s  from %s: %q\n%s\n", m.ID, m.From, m.Subject, m.Body)
		}
	case "status":
		sfs := flag.NewFlagSet("status", flag.ContinueOnError)
		asJSON := sfs.Bool("json", false, "print the raw snapshot as JSON")
		if err := sfs.Parse(rest[1:]); err != nil {
			return err
		}
		snap, err := c.StatusSnapshotContext(ctx)
		if err != nil {
			return err
		}
		if *asJSON {
			out, err := json.MarshalIndent(snap, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(out))
			return nil
		}
		renderStatus(snap)
	case "query":
		if len(rest) != 2 {
			return fmt.Errorf(`usage: query "<content=term[, content=term...]>"`)
		}
		res, err := c.QueryContext(ctx, rest[1])
		if err != nil {
			return err
		}
		for _, u := range res.Matches {
			fmt.Println(u)
		}
		st := res.Stats
		fmt.Printf("%d match(es); %d server(s): %d visited, %d pruned", len(res.Matches), st.Servers, st.Visited, st.Pruned)
		if st.SketchFP > 0 {
			fmt.Printf(" (%d sketch false positive(s))", st.SketchFP)
		}
		if st.Unavailable > 0 {
			fmt.Printf(", %d unavailable — result may be partial", st.Unavailable)
		}
		fmt.Println()
	case "crash", "recover":
		if len(rest) != 2 {
			return fmt.Errorf("usage: %s <server>", cmd)
		}
		if err := c.SetAvailabilityContext(ctx, rest[1], cmd == "recover"); err != nil {
			return err
		}
		fmt.Println(cmd, rest[1], "ok")
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}

// balanceLine summarizes the placement gauges an active policy publishes:
// total queued mail, mean/max per-server ρ (fixed-point, placement.RhoScale),
// and the migration counters. Empty when no policy is running.
func balanceLine(snap wire.StatusSnapshot) string {
	var qdepth int64
	var rhoSum, rhoMax float64
	rhoN := 0
	for k, v := range snap.Gauges {
		switch {
		case strings.HasSuffix(k, ".qdepth"):
			qdepth += v
		case strings.HasSuffix(k, ".rho"):
			rho := float64(v) / placement.RhoScale
			rhoSum += rho
			if rho > rhoMax {
				rhoMax = rho
			}
			rhoN++
		}
	}
	mig := snap.Counters["migrations_total"]
	if rhoN == 0 && qdepth == 0 && mig == 0 {
		return ""
	}
	line := fmt.Sprintf("balance: %d queued", qdepth)
	if rhoN > 0 {
		line += fmt.Sprintf(", ρ mean %.3f max %.3f over %d servers", rhoSum/float64(rhoN), rhoMax, rhoN)
	}
	if mig > 0 {
		line += fmt.Sprintf(", %d migrations (%d messages moved)", mig, snap.Counters["migration_cost"])
	}
	return line
}

func fmtBytes(n int64) string {
	if n >= 1e6 {
		return fmt.Sprintf("%.2f MB", float64(n)/1e6)
	}
	return fmt.Sprintf("%.1f KB", float64(n)/1e3)
}

// renderStatus prints the snapshot as the server table followed by the
// registry's counter and latency tables (latencies scaled ns → ms).
func renderStatus(snap wire.StatusSnapshot) {
	fmt.Printf("status v%d\n", snap.Version)
	for _, s := range snap.Servers {
		state := "up"
		if !s.Up {
			state = "DOWN"
		}
		fmt.Printf("%-8s %-5s deposits=%d\n", s.Name, state, s.Deposits)
	}
	if in, out := snap.Counters["wire_bytes_in"], snap.Counters["wire_bytes_out"]; in+out > 0 {
		line := fmt.Sprintf("wire: %s in, %s out", fmtBytes(in), fmtBytes(out))
		if h, ok := snap.Histograms["lat_wire_decode"]; ok && h.Count > 0 {
			line += fmt.Sprintf(", decode p50 %.1fµs p99 %.1fµs over %d frames",
				h.P50/1e3, h.P99/1e3, h.Count)
		}
		fmt.Println(line)
	}
	if line := balanceLine(snap); line != "" {
		fmt.Println(line)
	}
	reg := obs.Snapshot{
		Version:    snap.Version,
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
		Histograms: snap.Histograms,
	}
	if len(reg.Counters)+len(reg.Gauges) > 0 {
		fmt.Println()
		fmt.Print(reg.CounterTable("counters").Render())
	}
	if len(reg.Histograms) > 0 {
		fmt.Println()
		fmt.Print(reg.LatencyTable("latencies", 1e6, "ms").Render())
	}
}
