// Command mailctl is the command-line client for maild's wire protocol.
//
// Usage:
//
//	mailctl -addr 127.0.0.1:7425 register R1.h1.alice [s1 s2]
//	mailctl submit R1.h2.bob R1.h1.alice "subject" "body"
//	mailctl getmail R1.h1.alice
//	mailctl status
//	mailctl crash s1 | recover s1
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/largemail/largemail/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mailctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mailctl", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7425", "maild address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("need a command: register | submit | getmail | status | crash | recover")
	}
	c, err := wire.Dial(*addr)
	if err != nil {
		return err
	}
	defer c.Close()

	switch cmd := rest[0]; cmd {
	case "register":
		if len(rest) < 2 {
			return fmt.Errorf("usage: register <user> [servers...]")
		}
		if err := c.Register(rest[1], rest[2:]...); err != nil {
			return err
		}
		fmt.Println("registered", rest[1])
	case "submit":
		if len(rest) < 5 {
			return fmt.Errorf("usage: submit <from> <to> <subject> <body>")
		}
		id, err := c.Submit(rest[1], []string{rest[2]}, rest[3], rest[4])
		if err != nil {
			return err
		}
		fmt.Println("accepted", id)
	case "getmail":
		if len(rest) != 2 {
			return fmt.Errorf("usage: getmail <user>")
		}
		msgs, err := c.GetMail(rest[1])
		if err != nil {
			return err
		}
		if len(msgs) == 0 {
			fmt.Println("no new mail")
			return nil
		}
		for _, m := range msgs {
			fmt.Printf("%s  from %s: %q\n%s\n", m.ID, m.From, m.Subject, m.Body)
		}
	case "status":
		status, counters, err := c.StatusFull()
		if err != nil {
			return err
		}
		for _, s := range status {
			state := "up"
			if !s.Up {
				state = "DOWN"
			}
			fmt.Printf("%-8s %-5s deposits=%d\n", s.Name, state, s.Deposits)
		}
		if len(counters) > 0 {
			fmt.Println("counters:")
			keys := make([]string, 0, len(counters))
			for k := range counters {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("  %-20s %d\n", k, counters[k])
			}
		}
	case "crash", "recover":
		if len(rest) != 2 {
			return fmt.Errorf("usage: %s <server>", cmd)
		}
		if err := c.SetAvailability(rest[1], cmd == "recover"); err != nil {
			return err
		}
		fmt.Println(cmd, rest[1], "ok")
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}
