package main

import "testing"

func TestRunBundled(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunRandomDistributed(t *testing.T) {
	if err := run([]string{"-regions", "3", "-nodes", "5", "-distributed"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSourceRegion(t *testing.T) {
	if err := run([]string{"-source", "B"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-source", "Z"}); err == nil {
		t.Error("unknown source region accepted")
	}
}
