// Command mstviz computes the §3.3.1-A back-bone MST (+ local MSTs) for a
// multi-region topology and emits Graphviz DOT with the tree highlighted,
// plus the §3.3.1-B per-region cost table.
//
// Usage:
//
//	mstviz                          # the bundled Figure-2-style topology
//	mstviz -regions 4 -nodes 8      # a random multi-region internetwork
//	mstviz -distributed             # build local MSTs with distributed GHS
//	mstviz -source R1               # cost table from region R1
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mst"
	"github.com/largemail/largemail/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mstviz:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mstviz", flag.ContinueOnError)
	regions := fs.Int("regions", 0, "random topology: number of regions (0 = bundled example)")
	nodes := fs.Int("nodes", 6, "random topology: nodes per region")
	seed := fs.Int64("seed", 1, "random topology seed")
	distributed := fs.Bool("distributed", false, "build local MSTs with the distributed GHS algorithm")
	source := fs.String("source", "", "source region for the cost table (default: first region)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *graph.Graph
	if *regions > 0 {
		rng := rand.New(rand.NewSource(*seed))
		g = graph.MultiRegion(rng, graph.MultiRegionSpec{
			Regions: *regions, NodesPerRegion: *nodes,
			ExtraIntra: *nodes / 2, InterLinks: 2,
		})
	} else {
		g = exampleTopology()
	}

	res, err := mst.Backbone(g, *distributed)
	if err != nil {
		return err
	}
	combined := res.Combined
	if err := g.WriteDOT(os.Stdout, "backbone", &combined); err != nil {
		return err
	}
	fmt.Printf("\n// combined tree weight: %g over %d edges\n", res.TotalWeight(), len(res.Combined.Edges))
	if *distributed {
		fmt.Printf("// GHS protocol messages: %d\n", res.Stats.Messages)
	}

	src := *source
	if src == "" {
		src = g.Regions()[0]
	}
	rows, err := res.CostTable(src)
	if err != nil {
		return err
	}
	t := obs.NewTable(fmt.Sprintf("// §3.3.1-B cost table (source region %s)", src),
		"Region", "Backbone", "Local", "Total")
	for _, r := range rows {
		t.AddRow(r.Region, r.BackboneCost, r.LocalCost, r.Total)
	}
	fmt.Print(t.Render())
	return nil
}

// exampleTopology is the Figure-2-style 3-region internetwork.
func exampleTopology() *graph.Graph {
	g := graph.New()
	add := func(id graph.NodeID, region string) {
		g.MustAddNode(graph.Node{ID: id, Label: fmt.Sprintf("n%d", id), Region: region, Kind: graph.KindRouter})
	}
	for _, id := range []graph.NodeID{1, 2, 3, 4} {
		add(id, "A")
	}
	for _, id := range []graph.NodeID{11, 12, 13} {
		add(id, "B")
	}
	for _, id := range []graph.NodeID{21, 22, 23} {
		add(id, "C")
	}
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 2)
	g.MustAddEdge(3, 4, 3)
	g.MustAddEdge(1, 4, 8)
	g.MustAddEdge(11, 12, 4)
	g.MustAddEdge(12, 13, 5)
	g.MustAddEdge(11, 13, 9)
	g.MustAddEdge(21, 22, 6)
	g.MustAddEdge(22, 23, 7)
	g.MustAddEdge(4, 11, 10)
	g.MustAddEdge(3, 12, 14)
	g.MustAddEdge(13, 21, 11)
	g.MustAddEdge(23, 1, 20)
	return g
}
