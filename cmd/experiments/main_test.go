package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingle(t *testing.T) {
	if err := run([]string{"-run", "table3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSV(t *testing.T) {
	if err := run([]string{"-run", "table1", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run([]string{"-run", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunDotOutput(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-run", "figure2", "-dot", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure2.dot"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "style=bold") {
		t.Error("DOT file missing tree highlighting")
	}
}
