// Command experiments regenerates every table and figure of the paper plus
// the prose-claim experiments E1–E11 (see DESIGN.md for the index).
//
// Usage:
//
//	experiments -list
//	experiments -run all
//	experiments -run table2 -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/largemail/largemail/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiment IDs and exit")
	id := fs.String("run", "all", "experiment ID to run, or 'all'")
	csv := fs.Bool("csv", false, "emit tables as CSV instead of aligned text")
	dotDir := fs.String("dot", "", "also write figures' Graphviz sources into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return nil
	}
	var results []experiments.Result
	if *id == "all" {
		results = experiments.All()
	} else {
		r, ok := experiments.Run(*id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *id)
		}
		results = append(results, r)
	}
	if *dotDir != "" {
		if err := os.MkdirAll(*dotDir, 0o755); err != nil {
			return err
		}
	}
	for i, r := range results {
		if i > 0 {
			fmt.Println()
		}
		if *dotDir != "" && strings.HasPrefix(r.ID, "figure") && r.Text != "" {
			path := filepath.Join(*dotDir, r.ID+".dot")
			if err := os.WriteFile(path, []byte(r.Text), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		if *csv {
			fmt.Printf("== %s — %s ==\n", r.ID, r.Title)
			if r.Table != nil {
				fmt.Print(r.Table.CSV())
			}
			for _, n := range r.Notes {
				fmt.Println("note:", n)
			}
		} else {
			fmt.Print(r.Render())
		}
	}
	return nil
}
