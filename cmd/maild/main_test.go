package main

import "testing"

func TestBadListenAddr(t *testing.T) {
	if err := run([]string{"-listen", "256.256.256.256:1"}); err == nil {
		t.Error("bad listen address accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}
