// Command maild runs a live mail cluster (goroutine-per-server) behind the
// TCP wire protocol (internal/wire). It is the deployable face of the
// reproduction: the paper's authority-list delivery and GetMail semantics,
// reachable from any process.
//
// Usage:
//
//	maild -listen 127.0.0.1:7425 -servers s1,s2,s3
//	maild -listen 127.0.0.1:7425 -servers s1,s2,s3 -datadir /var/lib/maild
//
// With -datadir every server journals its mailbox store to
// <datadir>/<server>; restarting maild over the same directory recovers all
// buffered mail by WAL replay. -fsync always trades a disk flush per
// mutation for surviving OS crashes, not just process deaths.
//
// Stop with SIGINT/SIGTERM; the daemon drains connections and shuts the
// cluster down.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/largemail/largemail/internal/livenet"
	"github.com/largemail/largemail/internal/mail/mailstore"
	"github.com/largemail/largemail/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "maild:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("maild", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7425", "TCP listen address")
	servers := fs.String("servers", "s1,s2,s3", "comma-separated mail server names")
	datadir := fs.String("datadir", "", "durable store root (empty = memory-only stores)")
	fsyncFlag := fs.String("fsync", "never", "WAL fsync policy with -datadir: never|always")
	workers := fs.Int("workers", 0, "wire worker-pool size (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fsync, err := mailstore.ParseFsyncMode(*fsyncFlag)
	if err != nil {
		return err
	}
	names := strings.Split(*servers, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	srv, err := wire.NewServerWith(*listen, names, wire.ServerConfig{
		Cluster:     livenet.ClusterConfig{DataDir: *datadir, Fsync: fsync},
		WireWorkers: *workers,
	})
	if err != nil {
		return err
	}
	if *datadir != "" {
		fmt.Printf("maild listening on %s with servers %v (durable: %s, fsync=%s)\n",
			srv.Addr(), names, *datadir, fsync)
	} else {
		fmt.Printf("maild listening on %s with servers %v\n", srv.Addr(), names)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("maild: shutting down")
	srv.Close()
	return nil
}
