// Command maild runs a live mail cluster (goroutine-per-server) behind the
// TCP wire protocol (internal/wire). It is the deployable face of the
// reproduction: the paper's authority-list delivery and GetMail semantics,
// reachable from any process.
//
// Usage:
//
//	maild -listen 127.0.0.1:7425 -servers s1,s2,s3
//	maild -listen 127.0.0.1:7425 -servers s1,s2,s3 -datadir /var/lib/maild
//
// With -datadir every server journals its mailbox store to
// <datadir>/<server>; restarting maild over the same directory recovers all
// buffered mail by WAL replay. -fsync always trades a disk flush per
// mutation for surviving OS crashes, not just process deaths.
//
// Term indexes (and the sketches the wire query verb probes) are on by
// default; -termindex=false sheds their deposit-path cost on clusters that
// never serve queries.
//
// Stop with SIGINT/SIGTERM; the daemon drains connections and shuts the
// cluster down.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/largemail/largemail/internal/livenet"
	"github.com/largemail/largemail/internal/mail/mailstore"
	"github.com/largemail/largemail/internal/placement"
	"github.com/largemail/largemail/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "maild:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("maild", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7425", "TCP listen address")
	servers := fs.String("servers", "s1,s2,s3", "comma-separated mail server names")
	datadir := fs.String("datadir", "", "durable store root (empty = memory-only stores)")
	fsyncFlag := fs.String("fsync", "never", "WAL fsync policy with -datadir: never|always")
	workers := fs.Int("workers", 0, "wire worker-pool size (0 = GOMAXPROCS)")
	policyFlag := fs.String("policy", "", "placement policy for registrations that name no servers: static|jsq|rebalance (empty = all servers, registration order)")
	jsqd := fs.Int("d", 2, "JSQ(d) sample width (with -policy jsq)")
	termIndex := fs.Bool("termindex", true, "maintain per-store term indexes and sketches (serves the query verb)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fsync, err := mailstore.ParseFsyncMode(*fsyncFlag)
	if err != nil {
		return err
	}
	policy := ""
	if *policyFlag != "" {
		if policy, err = placement.ParseName(*policyFlag); err != nil {
			return err
		}
	}
	names := strings.Split(*servers, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	srv, err := wire.NewServerWith(*listen, names, wire.ServerConfig{
		Cluster:     livenet.ClusterConfig{DataDir: *datadir, Fsync: fsync, TermIndex: *termIndex},
		WireWorkers: *workers,
	})
	if err != nil {
		return err
	}
	if policy != "" {
		installPolicy(srv.Cluster(), policy, *jsqd, names)
		fmt.Printf("maild placement policy: %s\n", policy)
	}
	if *datadir != "" {
		fmt.Printf("maild listening on %s with servers %v (durable: %s, fsync=%s)\n",
			srv.Addr(), names, *datadir, fsync)
	} else {
		fmt.Printf("maild listening on %s with servers %v\n", srv.Addr(), names)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("maild: shutting down")
	srv.Close()
	return nil
}

// installPolicy builds the requested placement policy over the daemon's flat
// fleet (one region, all named servers) and installs it on the cluster.
// maild runs no engine tick, so "rebalance" places like static here —
// migrations are executed by the loadgen drivers.
func installPolicy(cl *livenet.Cluster, policy string, d int, names []string) {
	world := placement.World{
		Regions:          1,
		ServersPerRegion: len(names),
		HostsPerRegion:   len(names),
		AuthorityLen:     2,
	}
	label := func(slot int) string { return names[slot] }
	base := placement.NewRoundRobin(world)
	var pol placement.Policy = base
	pcfg := placement.Config{World: world, D: d, Gauges: cl.Obs(), Label: label}
	switch policy {
	case placement.NameJSQ:
		pol = placement.NewJSQ(base, pcfg)
	case placement.NameRebalance:
		pol = placement.NewRebalancer(base, pcfg)
	}
	cl.SetPlacement(pol, label)
}
