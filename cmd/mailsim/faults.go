package main

import (
	"fmt"

	"github.com/largemail/largemail/internal/core"
	"github.com/largemail/largemail/internal/faults"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/sim"
)

// faultsTick is the virtual length of one fault-schedule tick.
const faultsTick = 10 * sim.Unit

// runFaults replays a seeded chaos soak on the simulator: a dense
// host–server region, a compiled crash/link/latency/drop schedule, and a
// workload whose every committed message must be retrieved exactly once.
// The same seed reproduces the identical run, event for event.
func runFaults(seed int64, messages, ticks int) error {
	g := graph.New()
	nodes := make(map[string]graph.NodeID)
	users := make(map[graph.NodeID][]string)
	for i := 1; i <= 4; i++ {
		id := graph.HostBase + graph.NodeID(i)
		name := fmt.Sprintf("h%d", i)
		g.MustAddNode(graph.Node{ID: id, Label: name, Region: "R1", Kind: graph.KindHost})
		nodes[name] = id
		for u := 0; u < 3; u++ {
			users[id] = append(users[id], fmt.Sprintf("u%d_%d", i, u))
		}
	}
	for j := 1; j <= 3; j++ {
		id := graph.ServerBase + graph.NodeID(j)
		name := fmt.Sprintf("s%d", j)
		g.MustAddNode(graph.Node{ID: id, Label: name, Region: "R1", Kind: graph.KindServer})
		nodes[name] = id
	}
	for i := 1; i <= 4; i++ {
		for j := 1; j <= 3; j++ {
			g.MustAddEdge(graph.HostBase+graph.NodeID(i), graph.ServerBase+graph.NodeID(j), 1)
		}
	}
	g.MustAddEdge(graph.ServerBase+1, graph.ServerBase+2, 1)
	g.MustAddEdge(graph.ServerBase+2, graph.ServerBase+3, 1)
	g.MustAddEdge(graph.ServerBase+1, graph.ServerBase+3, 1)

	sys, err := core.NewSyntax(core.SyntaxConfig{
		Topology: g, UsersPerHost: users, AuthorityLen: 3, Seed: seed,
	})
	if err != nil {
		return err
	}
	sched, err := faults.Compile(faults.Spec{
		Seed:  seed,
		Ticks: ticks,
		Servers: []string{"s1", "s2", "s3"},
		Links: [][2]string{
			{"s1", "s2"}, {"s2", "s3"}, {"s1", "s3"},
			{"h1", "s1"}, {"h2", "s2"}, {"h3", "s3"}, {"h4", "s1"},
		},
		DropTargets: []string{"h1", "h2", "h3", "h4"},
		Crashes:     7,
		LinkFaults:  6,
		Latencies:   3,
		Drops:       4,
	})
	if err != nil {
		return err
	}
	fmt.Printf("fault schedule (seed %d, %d events over %d ticks):\n", seed, len(sched.Events), sched.Horizon())
	for _, e := range sched.Events {
		fmt.Println("  " + e.String())
	}

	inj := faults.NewSimTarget(sys.Net, nodes, faultsTick)
	res, err := faults.Soak(faults.NewSimSystem(sys, faultsTick), inj, sched, faults.SoakConfig{
		Messages: messages,
	})
	if err != nil {
		return err
	}
	fmt.Println(res.String())
	if !res.Ok() {
		return fmt.Errorf("invariant violated: %d lost, %d duplicated", len(res.Lost), len(res.Duplicates))
	}
	fmt.Println("invariant held: every committed message retrieved exactly once")
	return nil
}
