package main

import "testing"

func TestRunSyntax(t *testing.T) {
	if err := run([]string{"-rounds", "20", "-fail", "0.1", "-hosts", "5", "-servers", "2", "-users", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLocation(t *testing.T) {
	if err := run([]string{"-design", "location", "-roam", "0.3", "-rounds", "20"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownDesign(t *testing.T) {
	if err := run([]string{"-design", "quantum"}); err == nil {
		t.Error("unknown design accepted")
	}
}
