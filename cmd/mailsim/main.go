// Command mailsim drives a randomized mail workload through one of the
// paper's designs on a synthetic region and prints traffic statistics and
// the §4 evaluation report.
//
// Usage:
//
//	mailsim                                  # defaults: syntax design
//	mailsim -design location -roam 0.3
//	mailsim -hosts 12 -servers 4 -users 8 -rounds 500 -fail 0.1 -seed 7
//	mailsim -faults -seed 42                 # seeded chaos soak + no-loss audit
//	mailsim -datadir /tmp/mailsim            # durable stores (syntax design)
//
// With -datadir the syntax design journals every server's mailbox store to
// <datadir>/s<node>; a later run over the same directory recovers buffered
// mail by WAL replay.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/largemail/largemail/internal/core"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mail/mailstore"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mailsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mailsim", flag.ContinueOnError)
	design := fs.String("design", "syntax", "mail-system design: syntax | location")
	hosts := fs.Int("hosts", 8, "hosts in the region")
	servers := fs.Int("servers", 3, "servers in the region")
	users := fs.Int("users", 4, "users per host")
	rounds := fs.Int("rounds", 200, "workload rounds (one message per round)")
	failProb := fs.Float64("fail", 0, "per-round server crash probability")
	roamProb := fs.Float64("roam", 0, "per-round user roam probability (location design)")
	seed := fs.Int64("seed", 1, "deterministic seed")
	faultsMode := fs.Bool("faults", false, "run the seeded chaos soak (fault schedule + no-loss audit) instead of the workload")
	faultTicks := fs.Int("fault-ticks", 120, "fault-schedule horizon in ticks (with -faults)")
	datadir := fs.String("datadir", "", "durable store root for the syntax design (empty = memory-only)")
	fsyncFlag := fs.String("fsync", "never", "WAL fsync policy with -datadir: never|always")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fsync, err := mailstore.ParseFsyncMode(*fsyncFlag)
	if err != nil {
		return err
	}
	if *faultsMode {
		return runFaults(*seed, *rounds*3, *faultTicks)
	}

	g, userMap := regionTopology(*hosts, *servers, *users, *seed)
	rng := rand.New(rand.NewSource(*seed))
	switch *design {
	case "syntax":
		return runSyntax(g, userMap, rng, *rounds, *failProb, *datadir, fsync)
	case "location":
		if *datadir != "" {
			return fmt.Errorf("-datadir is only wired into the syntax design")
		}
		return runLocation(g, userMap, rng, *rounds, *failProb, *roamProb)
	default:
		return fmt.Errorf("unknown design %q", *design)
	}
}

// regionTopology builds one region: hosts and servers on a random connected
// graph, plus a user population.
func regionTopology(hosts, servers, usersPerHost int, seed int64) (*graph.Graph, map[graph.NodeID][]string) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomConnected(rng, hosts+servers, (hosts+servers)/2, 1)
	userMap := make(map[graph.NodeID][]string)
	i := 0
	for _, n := range g.Nodes() {
		node := n
		if i < servers {
			node.Kind = graph.KindServer
			node.Label = fmt.Sprintf("S%d", i+1)
		} else {
			node.Kind = graph.KindHost
			node.Label = fmt.Sprintf("H%d", i-servers+1)
			for u := 0; u < usersPerHost; u++ {
				userMap[n.ID] = append(userMap[n.ID], fmt.Sprintf("u%d_%d", i-servers+1, u))
			}
		}
		node.Region = "R1"
		// Rebuild the node with roles; graph.Node is a value in the map.
		_ = g.RemoveNode(n.ID)
		g.MustAddNode(node)
		i++
	}
	// RemoveNode dropped the edges; rebuild a fresh random graph over the
	// role-tagged nodes instead.
	rng2 := rand.New(rand.NewSource(seed + 1))
	ids := g.NodeIDs()
	perm := rng2.Perm(len(ids))
	for j := 1; j < len(ids); j++ {
		a, b := ids[perm[j]], ids[perm[rng2.Intn(j)]]
		if _, ok := g.Weight(a, b); !ok {
			g.MustAddEdge(a, b, 1+rng2.Float64())
		}
	}
	for extra := 0; extra < len(ids)/2; extra++ {
		a, b := ids[rng2.Intn(len(ids))], ids[rng2.Intn(len(ids))]
		if a == b {
			continue
		}
		if _, ok := g.Weight(a, b); !ok {
			g.MustAddEdge(a, b, 1+rng2.Float64())
		}
	}
	return g, userMap
}

func runSyntax(g *graph.Graph, userMap map[graph.NodeID][]string, rng *rand.Rand, rounds int, failProb float64, datadir string, fsync mailstore.FsyncMode) error {
	s, err := core.NewSyntax(core.SyntaxConfig{
		Topology: g, UsersPerHost: userMap, Seed: rng.Int63(),
		DataDir: datadir, Fsync: fsync,
	})
	if err != nil {
		return err
	}
	defer s.Close()
	users := s.Users()
	serverIDs := s.Servers()
	for r := 0; r < rounds; r++ {
		churnServers(rng, failProb, serverIDs, func(id graph.NodeID) { s.Net.Crash(id) },
			func(id graph.NodeID) { s.Net.Recover(id) }, func(id graph.NodeID) bool { return s.Net.IsUp(id) })
		from := users[rng.Intn(len(users))]
		to := users[rng.Intn(len(users))]
		_ = s.Send(from, []names.Name{to}, "msg", "body")
		s.RunFor(50 * sim.Unit)
		if a, err := s.Agent(to); err == nil {
			a.GetMail()
		}
	}
	for _, id := range serverIDs {
		s.Net.Recover(id)
	}
	s.RunFor(500 * sim.Unit)
	s.Run()
	for _, u := range users {
		a, _ := s.Agent(u)
		a.GetMail()
		a.GetMail()
	}
	fmt.Print(s.Evaluate().Render())
	printNetStats(s.Net.Stats().Counters())
	return nil
}

func runLocation(g *graph.Graph, userMap map[graph.NodeID][]string, rng *rand.Rand, rounds int, failProb, roamProb float64) error {
	s, err := core.NewLocation(core.LocationConfig{
		Topology: g, Region: "R1", UsersPerHost: userMap, Seed: rng.Int63(),
	})
	if err != nil {
		return err
	}
	users := s.Users()
	var hostNodes []graph.NodeID
	for _, n := range g.Nodes() {
		if n.Kind == graph.KindHost {
			hostNodes = append(hostNodes, n.ID)
		}
	}
	for r := 0; r < rounds; r++ {
		if rng.Float64() < roamProb {
			u := users[rng.Intn(len(users))]
			if a, err := s.Agent(u); err == nil {
				if err := a.MoveTo(hostNodes[rng.Intn(len(hostNodes))]); err == nil {
					_ = a.Login()
				}
			}
		}
		from := users[rng.Intn(len(users))]
		to := users[rng.Intn(len(users))]
		fa, _ := s.Agent(from)
		_ = fa.Send([]names.Name{to}, "msg", "body")
		s.RunFor(50 * sim.Unit)
		if a, err := s.Agent(to); err == nil {
			a.GetMail()
		}
	}
	s.Run()
	for _, u := range users {
		a, _ := s.Agent(u)
		a.GetMail()
	}
	fmt.Print(s.Evaluate().Render())
	printNetStats(s.Net.Stats().Counters())
	_ = failProb // location servers stay up: tracking consistency under churn is future work (§5)
	return nil
}

func churnServers(rng *rand.Rand, p float64, ids []graph.NodeID,
	crash, recover func(graph.NodeID), isUp func(graph.NodeID) bool) {
	if p <= 0 {
		return
	}
	for _, id := range ids {
		if rng.Float64() < p {
			crash(id)
		} else {
			recover(id)
		}
	}
	for _, id := range ids { // keep at least one up
		if isUp(id) {
			return
		}
	}
	recover(ids[rng.Intn(len(ids))])
}

func printNetStats(snap map[string]int64) {
	fmt.Println("network counters:")
	for _, k := range []string{"delivered", "dropped_dest_down", "hops", "cost_milli"} {
		fmt.Printf("  %-18s %d\n", k, snap[k])
	}
}
