// Roaming: the limited location-independent design (§3.2). A user moves
// away from their primary host without changing names; servers track the
// move cooperatively and deliver alerts to the current location.
package main

import (
	"fmt"
	"log"

	"github.com/largemail/largemail/internal/core"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/names"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ex := graph.Figure1()
	users := map[graph.NodeID][]string{
		ex.Hosts[0]: {"carol"}, // primary location: H1
		ex.Hosts[1]: {"dave"},
	}
	sys, err := core.NewLocation(core.LocationConfig{
		Topology: ex.G, Region: "R1", UsersPerHost: users, Seed: 3,
	})
	if err != nil {
		return err
	}
	carol := names.MustParse("R1.H1.carol")
	dave := names.MustParse("R1.H2.dave")
	cAgent, _ := sys.Agent(carol)
	dAgent, _ := sys.Agent(dave)

	// Carol's sub-group authority servers are hash-derived (§3.2.2b) and do
	// not change when she moves.
	fmt.Printf("carol's sub-group authority servers: %v\n", sys.Sys.AuthorityFor(carol))

	// At the primary host: delivery needs no location consultation.
	if err := cAgent.Login(); err != nil {
		return err
	}
	sys.Run()
	if err := dAgent.Send([]names.Name{carol}, "at-home", "no tracking needed"); err != nil {
		return err
	}
	sys.Run()
	fmt.Printf("at primary: %d alert(s), consultations so far: %d\n",
		len(cAgent.Notifications()), sys.Sys.Stats().Get("consultations"))

	// Carol roams to H6 — same name, same servers (§3.2.4).
	if err := cAgent.MoveTo(ex.Hosts[5]); err != nil {
		return err
	}
	if err := cAgent.Login(); err != nil {
		return err
	}
	sys.Run()
	fmt.Printf("carol moved to node %v (primary is %v); name unchanged: %v\n",
		cAgent.CurrentHost(), ex.Hosts[0], cAgent.User())

	if err := dAgent.Send([]names.Name{carol}, "follow-me", "found via consultation"); err != nil {
		return err
	}
	sys.Run()
	fmt.Printf("roaming: %d alert(s) total, consultations now: %d (the roaming overhead of §3.2.2c)\n",
		len(cAgent.Notifications()), sys.Sys.Stats().Get("consultations"))

	for _, m := range cAgent.GetMail() {
		fmt.Printf("carol retrieved %q from %s\n", m.Subject, m.From)
	}
	return nil
}
