// Groups: conventional distribution lists (§4.3 "group naming") next to
// attribute-based mass distribution (§3.3) — the maintained-list baseline
// the paper's attribute design replaces ("no distribution list has to be
// available", §3.3.1-B).
package main

import (
	"fmt"
	"log"

	"github.com/largemail/largemail/internal/attr"
	"github.com/largemail/largemail/internal/core"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/names"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ex := graph.Figure1()
	users := map[graph.NodeID][]string{
		ex.Hosts[0]: {"alice", "erin"},
		ex.Hosts[1]: {"bob"},
		ex.Hosts[2]: {"carol"},
	}
	sys, err := core.NewSyntax(core.SyntaxConfig{Topology: ex.G, UsersPerHost: users, Seed: 6})
	if err != nil {
		return err
	}
	alice := names.MustParse("R1.H1.alice")
	erin := names.MustParse("R1.H1.erin")
	bob := names.MustParse("R1.H2.bob")
	carol := names.MustParse("R1.H3.carol")

	// The maintained way: an administrator curates a distribution list.
	dir, _ := sys.Directory("R1")
	team := names.MustParse("R1.lists.gophers")
	if err := dir.SetGroup(team, []names.Name{alice, bob, carol}); err != nil {
		return err
	}
	if err := sys.Send(erin, []names.Name{team}, "standup", "9am sharp"); err != nil {
		return err
	}
	sys.Run()
	for _, u := range []names.Name{alice, bob, carol} {
		a, _ := sys.Agent(u)
		got := a.GetMail()
		fmt.Printf("%s received %d message(s) via the %s list\n", u, len(got), team.User)
	}

	// The attribute way: no list to maintain — recipients are found by what
	// they are, not by enumeration (here, everyone tagged as a gopher).
	reg := attr.NewRegistry()
	for _, u := range []names.Name{alice, bob, carol} {
		p := &attr.Profile{User: u}
		p.Add(attr.TypeInterest, "gophers", attr.Public)
		if err := reg.Put(p); err != nil {
			return err
		}
	}
	outsider := &attr.Profile{User: erin}
	outsider.Add(attr.TypeInterest, "crustaceans", attr.Public)
	if err := reg.Put(outsider); err != nil {
		return err
	}
	matches, err := reg.Search(attr.Query{Predicates: []attr.Predicate{
		{Type: attr.TypeInterest, Op: attr.OpEquals, Pattern: "gophers"},
	}})
	if err != nil {
		return err
	}
	fmt.Printf("attribute search found the same audience with no curated list: %v\n", matches)
	return nil
}
