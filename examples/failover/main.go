// Failover: demonstrate §3.1.2c — mail survives authority-server failures.
// The primary server crashes with mail buffered on it; new mail lands on the
// secondary; GetMail collects everything, including the stranded mail after
// the primary recovers, without ever polling servers that cannot hold mail.
package main

import (
	"fmt"
	"log"

	"github.com/largemail/largemail/internal/core"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ex := graph.Figure1()
	users := map[graph.NodeID][]string{
		ex.Hosts[0]: {"alice"},
		ex.Hosts[1]: {"bob"},
	}
	sys, err := core.NewSyntax(core.SyntaxConfig{Topology: ex.G, UsersPerHost: users, Seed: 2})
	if err != nil {
		return err
	}
	alice := names.MustParse("R1.H1.alice")
	bob := names.MustParse("R1.H2.bob")
	aAgent, _ := sys.Agent(alice)
	auth := aAgent.Authority()
	fmt.Printf("alice's authority list: %v\n", auth)
	aAgent.GetMail() // warm start so LastCheckingTime is meaningful

	// 1. Mail arrives and is buffered at the primary.
	if err := sys.Send(bob, []names.Name{alice}, "msg-1", "on the primary"); err != nil {
		return err
	}
	sys.Run()

	// 2. The primary crashes before alice checks. Her mail is stranded.
	primary := auth[0]
	sys.Net.Crash(primary)
	fmt.Printf("primary S%v crashed with msg-1 buffered on it\n", primary)

	// 3. New mail is deposited at the first *active* authority server.
	if err := sys.Send(bob, []names.Name{alice}, "msg-2", "on the secondary"); err != nil {
		return err
	}
	sys.Run()

	// 4. GetMail while the primary is down: fetches msg-2 from the
	//    secondary and remembers the primary as previously unavailable.
	for _, m := range aAgent.GetMail() {
		fmt.Printf("while primary down, got %q\n", m.Subject)
	}
	fmt.Printf("previously-unavailable servers: %v\n", aAgent.PreviouslyUnavailable())

	// 5. The primary recovers; its LastStartTime is newer than alice's
	//    LastCheckingTime, so GetMail knows to keep walking the list and
	//    recovers the stranded msg-1. Nothing is lost.
	sys.Net.Recover(primary)
	sys.RunFor(sim.Unit)
	for _, m := range aAgent.GetMail() {
		fmt.Printf("after recovery, got %q\n", m.Subject)
	}
	st := aAgent.Stats()
	fmt.Printf("total received: %d, polls: %d, failed probes: %d, duplicates suppressed: %d\n",
		st.Received, st.Polls, st.FailedProbes, st.Duplicates)
	if st.Received != 2 {
		return fmt.Errorf("lost mail: received %d of 2", st.Received)
	}
	fmt.Println("no messages lost — the §5 guarantee")
	return nil
}
