// Quickstart: build the paper's Figure 1 region as a syntax-directed mail
// system (§3.1), send a message, and retrieve it with the GetMail algorithm.
package main

import (
	"fmt"
	"log"

	"github.com/largemail/largemail/internal/core"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/names"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The paper's worked example: six hosts, three servers, one region.
	ex := graph.Figure1()

	// Home two users: alice on H1, bob on H2.
	users := map[graph.NodeID][]string{
		ex.Hosts[0]: {"alice"},
		ex.Hosts[1]: {"bob"},
	}
	sys, err := core.NewSyntax(core.SyntaxConfig{
		Topology:     ex.G,
		UsersPerHost: users,
		Seed:         1,
	})
	if err != nil {
		return err
	}

	alice := names.MustParse("R1.H1.alice")
	bob := names.MustParse("R1.H2.bob")

	// The load-balanced server assignment (§3.1.1) decided each user's
	// authority-server list.
	aAgent, err := sys.Agent(alice)
	if err != nil {
		return err
	}
	fmt.Printf("alice's authority servers: %v\n", aAgent.Authority())

	// Send: the user interface contacts the first active authority server,
	// which resolves bob's name and deposits the message (§3.1.2).
	if err := sys.Send(alice, []names.Name{bob}, "hello", "welcome to 1988"); err != nil {
		return err
	}
	sys.Run() // advance the discrete-event simulation to quiescence

	// Retrieve with the paper's GetMail procedure (§3.1.2c).
	bAgent, err := sys.Agent(bob)
	if err != nil {
		return err
	}
	for _, m := range bAgent.GetMail() {
		fmt.Printf("bob received %s from %s: %q / %q (submitted at %v)\n",
			m.ID, m.From, m.Subject, m.Body, m.SubmittedAt)
	}
	fmt.Printf("polls used: %d (poll-all would have used %d)\n",
		bAgent.Stats().Polls, len(bAgent.Authority()))
	return nil
}
