// Chaos: drive the live cluster through a seeded fault schedule — crashes,
// unreachability windows, latency spikes, transient drops — while a
// workload submits mail, then audit the E2 invariant: every accepted
// message retrieved exactly once. This is the paper's §3.1.2c "no messages
// will be lost even when some servers fail" claim, exercised on real
// goroutines with the redelivery spool doing the buffering.
//
// The soak also runs the trace audit (every committed message must show a
// complete submit→deposit→retrieve span chain) and prints the per-stage
// latency quantiles from the same obs registry. Run via `make obs-demo`.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/largemail/largemail/internal/faults"
	"github.com/largemail/largemail/internal/livenet"
	"github.com/largemail/largemail/internal/names"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	c := livenet.NewCluster()
	defer c.Close()
	for _, n := range []string{"s1", "s2", "s3"} {
		if _, err := c.AddServer(n); err != nil {
			return err
		}
	}
	// The spool turns "every server down right now" into accept-and-retry.
	if err := c.EnableSpool(livenet.SpoolConfig{
		BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Seed: 7,
	}); err != nil {
		return err
	}

	rotations := [][]string{
		{"s1", "s2", "s3"}, {"s2", "s3", "s1"}, {"s3", "s1", "s2"},
	}
	sys := faults.NewLiveSystem(c, time.Millisecond)
	for i := 0; i < 6; i++ {
		u := names.MustParse(fmt.Sprintf("R1.h%d.user%d", i%3+1, i))
		c.Directory().SetAuthority(u, rotations[i%len(rotations)])
		if err := sys.AddUser(u); err != nil {
			return err
		}
	}

	sched, err := faults.Compile(faults.Spec{
		Seed:  42,
		Ticks: 120,
		Servers: []string{"s1", "s2", "s3"},
		Links: [][2]string{
			{"net", "s1"}, {"net", "s2"}, {"net", "s3"},
		},
		DropTargets:   []string{"s1", "s2", "s3"},
		Crashes:       7,
		LinkFaults:    6,
		Latencies:     2,
		Drops:         4,
		MaxDelayTicks: 1,
	})
	if err != nil {
		return err
	}
	fmt.Printf("compiled %d fault events over %d ticks (seed %d)\n",
		len(sched.Events), sched.Horizon(), sched.Seed)

	res, err := faults.Soak(sys, faults.NewLiveTarget(c, time.Millisecond), sched, faults.SoakConfig{
		Messages: 300,
	})
	if err != nil {
		return err
	}
	fmt.Println(res.String())

	fmt.Println("cluster counters:")
	for _, k := range []string{"deposit_failovers", "deposit_retries", "injected_drops",
		"submit_spooled", "spool_redelivered", "spool_retries"} {
		fmt.Printf("  %-20s %d\n", k, c.Metrics()[k])
	}
	fmt.Println()
	fmt.Print(c.Snapshot().LatencyTable("per-stage latency (from the lifecycle tracer)", 1e6, "ms").Render())
	if !res.Ok() {
		return fmt.Errorf("invariant violated: lost=%v duplicates=%v tracegaps=%v",
			res.Lost, res.Duplicates, res.TraceGaps)
	}
	fmt.Printf("invariant held: every accepted message retrieved exactly once,\n"+
		"with a complete span chain for all %d committed messages\n", res.Committed)
	return nil
}
