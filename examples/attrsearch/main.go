// Attrsearch: the attribute-based mail system (§3.3). Users are found by
// attributes — including misspelled names resolved by fuzzy matching — over
// the back-bone MST, with the §3.3.1-B cost table gating mass distribution.
package main

import (
	"fmt"
	"log"

	"github.com/largemail/largemail/internal/attr"
	"github.com/largemail/largemail/internal/core"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/names"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Three regions of mail servers, each holding user profiles.
	g := graph.New()
	add := func(id graph.NodeID, region string) {
		g.MustAddNode(graph.Node{ID: id, Label: fmt.Sprintf("srv%d", id), Region: region, Kind: graph.KindServer})
	}
	for _, id := range []graph.NodeID{1, 2} {
		add(id, "east")
	}
	for _, id := range []graph.NodeID{11, 12} {
		add(id, "central")
	}
	for _, id := range []graph.NodeID{21, 22} {
		add(id, "west")
	}
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(11, 12, 2)
	g.MustAddEdge(21, 22, 3)
	g.MustAddEdge(2, 11, 10)
	g.MustAddEdge(12, 21, 12)
	g.MustAddEdge(22, 1, 30)

	mkProfile := func(user, fullName, org, expertise string) *attr.Profile {
		p := &attr.Profile{User: names.MustParse(user), Groups: []string{org}}
		p.Add(attr.TypeName, fullName, attr.Public).
			Add(attr.TypeOrganization, org, attr.Public).
			Add(attr.TypeExpertise, expertise, attr.Public).
			Add(attr.TypeCity, "hidden-city", attr.Restricted)
		return p
	}
	profiles := map[graph.NodeID][]*attr.Profile{
		1:  {mkProfile("east.h1.liddell", "Alice Liddell", "acme", "distributed systems")},
		2:  {mkProfile("east.h2.burke", "Brian Burke", "globex", "databases")},
		11: {mkProfile("central.h1.chen", "Carol Chen", "acme", "mail systems")},
		12: {mkProfile("central.h2.diaz", "Daniel Diaz", "initech", "mail systems")},
		21: {mkProfile("west.h1.evans", "Erin Evans", "acme", "networks")},
		22: {mkProfile("west.h2.fox", "Frank Fox", "globex", "mail systems")},
	}
	sys, err := core.NewAttribute(core.AttributeConfig{Topology: g, Profiles: profiles, Seed: 4})
	if err != nil {
		return err
	}

	// Directory look-up with a misspelled name (§3.3-i).
	misspelled := attr.Query{Predicates: []attr.Predicate{
		{Type: attr.TypeName, Op: attr.OpFuzzy, Pattern: "Alice Lidell"},
	}}
	res, err := sys.Search(1, misspelled, nil)
	if err != nil {
		return err
	}
	fmt.Printf("fuzzy look-up 'Alice Lidell' → %v (searched %d nodes, cost %.1f)\n",
		res.Matches, res.NodesSearched, res.TrafficCost)

	// Information exchange: find everyone specialized in mail systems.
	experts := attr.Query{Predicates: []attr.Predicate{
		{Type: attr.TypeExpertise, Op: attr.OpEquals, Pattern: "mail systems"},
	}}
	res, err = sys.Search(1, experts, nil)
	if err != nil {
		return err
	}
	fmt.Printf("expertise search → %d recipients: %v\n", len(res.Matches), res.Matches)

	// The §3.3.1-B cost table from region east, and a budgeted mass mail.
	rows, err := sys.CostTable("east")
	if err != nil {
		return err
	}
	fmt.Println("cost table (source east):")
	for _, r := range rows {
		fmt.Printf("  %-8s backbone %5.1f + local %4.1f = %5.1f\n",
			r.Region, r.BackboneCost, r.LocalCost, r.Total)
	}
	budget := rows[1].Total + rows[0].Total // afford the two cheapest regions
	mm, estimate, err := sys.MassMail(1, "east", experts, budget)
	if err != nil {
		return err
	}
	fmt.Printf("mass mail under budget %.1f (estimated %.1f): reached %d nodes, %d recipients\n",
		budget, estimate, mm.NodesSearched, len(mm.Matches))

	// Privacy: restricted attributes only match for group members (§3.3.1).
	city := attr.Query{Predicates: []attr.Predicate{
		{Type: attr.TypeCity, Op: attr.OpEquals, Pattern: "hidden-city"},
	}}
	outsider, _ := sys.Search(1, city, nil)
	city.QuerierGroups = []string{"acme"}
	member, _ := sys.Search(1, city, nil)
	fmt.Printf("restricted-attribute search: outsider sees %d, acme member sees %d\n",
		len(outsider.Matches), len(member.Matches))
	return nil
}
