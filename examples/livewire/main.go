// Livewire: the same mail semantics on the live runtime — goroutine-per-
// server cluster behind the TCP wire protocol. Starts a daemon in-process,
// drives it over a real socket, crashes the primary, and shows that the
// failover and GetMail behaviour matches the simulated systems.
package main

import (
	"fmt"
	"log"

	"github.com/largemail/largemail/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	srv, err := wire.NewServer("127.0.0.1:0", []string{"s1", "s2", "s3"})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Println("cluster listening on", srv.Addr())

	c, err := wire.Dial(srv.Addr())
	if err != nil {
		return err
	}
	defer c.Close()

	// Authority lists as in §3.1.1: ordered, primary first.
	if err := c.Register("R1.h1.alice", "s1", "s2", "s3"); err != nil {
		return err
	}
	if err := c.Register("R1.h2.bob", "s2", "s3", "s1"); err != nil {
		return err
	}

	id, err := c.Submit("R1.h2.bob", []string{"R1.h1.alice"}, "hello", "over a real socket")
	if err != nil {
		return err
	}
	fmt.Println("accepted", id)

	// Crash the primary: the next deposit fails over down the list.
	if err := c.SetAvailability("s1", false); err != nil {
		return err
	}
	if _, err := c.Submit("R1.h2.bob", []string{"R1.h1.alice"}, "failover", "primary is down"); err != nil {
		return err
	}
	status, err := c.Status()
	if err != nil {
		return err
	}
	for _, s := range status {
		fmt.Printf("  %s up=%v deposits=%d\n", s.Name, s.Up, s.Deposits)
	}

	// GetMail (the §3.1.2c walk) runs server-side; with s1 down it returns
	// the failover copy; after recovery, the stranded one.
	msgs, err := c.GetMail("R1.h1.alice")
	if err != nil {
		return err
	}
	for _, m := range msgs {
		fmt.Printf("got %q while primary down\n", m.Subject)
	}
	if err := c.SetAvailability("s1", true); err != nil {
		return err
	}
	msgs, err = c.GetMail("R1.h1.alice")
	if err != nil {
		return err
	}
	for _, m := range msgs {
		fmt.Printf("got %q after recovery — nothing lost\n", m.Subject)
	}
	return nil
}
