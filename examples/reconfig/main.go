// Reconfig: the §3.1.3 growth scenario. User growth overloads the region's
// servers; a new server is added and the §3.1.1 assignment algorithm
// redistributes the load onto it, refreshing authority lists live.
package main

import (
	"fmt"
	"log"

	"github.com/largemail/largemail/internal/assign"
	"github.com/largemail/largemail/internal/graph"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ex := graph.Figure1()
	commW, procW, procTime := assign.PaperWeights()
	maxLoad := make(map[graph.NodeID]int)
	for _, s := range ex.Servers {
		maxLoad[s] = 100
	}
	a, err := assign.New(assign.Config{
		Topology: ex.G, Hosts: ex.Hosts, Servers: ex.Servers,
		Users: ex.Users, MaxLoad: maxLoad,
		ProcTime: procTime, CommW: commW, ProcW: procW,
	})
	if err != nil {
		return err
	}
	stats := a.Run()
	fmt.Print(a.Table("Balanced Figure 1 region (270 users, 3×100 capacity)").Render())
	fmt.Printf("max utilisation %.3f, overloaded: %v\n\n", a.MaxUtilization(), stats.Overloaded)

	// Growth: 90 new users sign up on H2 (§3.1.3a: "if many users are
	// added, and existing servers are overloaded, then new servers should
	// be added").
	stats, err = a.AddUsers(ex.Hosts[1], 90)
	if err != nil {
		return err
	}
	fmt.Printf("after +90 users on H2: max utilisation %.3f, overloaded servers: %v\n",
		a.MaxUtilization(), stats.Overloaded)

	// Add S4 next to S3 and rebalance (§3.1.3c).
	s4 := graph.ServerBase + 4
	ex.G.MustAddNode(graph.Node{ID: s4, Label: "S4", Region: "R1", Kind: graph.KindServer})
	ex.G.MustAddEdge(s4, ex.Servers[2], 1)
	stats, err = a.AddServer(s4, 100)
	if err != nil {
		return err
	}
	fmt.Printf("\nadded S4: %d moves over %d sweeps redistributed the load\n", stats.Moves, stats.Sweeps)
	fmt.Print(a.Table("After adding S4 (360 users, 4×100 capacity)").Render())
	fmt.Printf("max utilisation %.3f, overloaded: %v\n", a.MaxUtilization(), stats.Overloaded)

	fmt.Println("\nrefreshed authority lists (primary, secondary):")
	lists := a.AuthorityLists(2)
	label := func(id graph.NodeID) string {
		n, _ := ex.G.Node(id)
		return n.Label
	}
	for _, h := range ex.Hosts {
		fmt.Printf("  %s → %s, %s\n", label(h), label(lists[h][0]), label(lists[h][1]))
	}

	// Shrink again: removing S4 pushes its users back (§3.1.3c: deleted
	// servers "notify all other servers ... [which] cooperate to share the
	// load").
	stats, err = a.RemoveServer(s4)
	if err != nil {
		return err
	}
	fmt.Printf("\nremoved S4: overloaded again: %v (the region needs its fourth server)\n", stats.Overloaded)
	return nil
}
