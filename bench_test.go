// Benchmarks regenerating the paper's tables and figures plus the ablations
// DESIGN.md calls out. One benchmark per table/figure, named after it; the
// E-series benches carry the paper-claim experiments. Domain results (polls
// per retrieval, cost ratios) are emitted with b.ReportMetric so `go test
// -bench` output reads like the paper's evaluation.
package largemail_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/largemail/largemail/internal/assign"
	"github.com/largemail/largemail/internal/attr"
	"github.com/largemail/largemail/internal/broadcast"
	"github.com/largemail/largemail/internal/client"
	"github.com/largemail/largemail/internal/core"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/livenet"
	"github.com/largemail/largemail/internal/mst"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/server"
	"github.com/largemail/largemail/internal/sim"
	"github.com/largemail/largemail/internal/wire"
)

func figure1Config() assign.Config {
	ex := graph.Figure1()
	commW, procW, procTime := assign.PaperWeights()
	maxLoad := make(map[graph.NodeID]int)
	for _, s := range ex.Servers {
		maxLoad[s] = 100
	}
	return assign.Config{
		Topology: ex.G, Hosts: ex.Hosts, Servers: ex.Servers,
		Users: ex.Users, MaxLoad: maxLoad,
		ProcTime: procTime, CommW: commW, ProcW: procW,
	}
}

// BenchmarkFigure1Topology regenerates Figure 1: the example topology with
// its zero-load shortest-path costs.
func BenchmarkFigure1Topology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ex := graph.Figure1()
		for _, h := range ex.Hosts {
			if _, err := ex.G.ShortestPaths(h); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable1Initialization regenerates Table 1: the nearest-server
// initialization of the §3.1.1 assignment.
func BenchmarkTable1Initialization(b *testing.B) {
	cfg := figure1Config()
	a, err := assign.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Initialize()
	}
	b.ReportMetric(float64(a.Load(cfg.Servers[1])), "S2_load")
}

// BenchmarkTable2Balancing regenerates Table 2: the full balancing run.
func BenchmarkTable2Balancing(b *testing.B) {
	cfg := figure1Config()
	a, err := assign.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var moves int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Initialize()
		moves = a.Balance().Moves
	}
	b.ReportMetric(float64(moves), "moves")
	b.ReportMetric(a.MaxUtilization(), "max_util")
}

// BenchmarkTable3Skewed regenerates Table 3: the skewed 100/100/20 variant.
func BenchmarkTable3Skewed(b *testing.B) {
	ex := graph.Table3Variant()
	commW, procW, procTime := assign.PaperWeights()
	maxLoad := make(map[graph.NodeID]int)
	for _, s := range ex.Servers {
		maxLoad[s] = 100
	}
	a, err := assign.New(assign.Config{
		Topology: ex.G, Hosts: ex.Hosts, Servers: ex.Servers,
		Users: ex.Users, MaxLoad: maxLoad,
		ProcTime: procTime, CommW: commW, ProcW: procW,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Initialize()
		a.Balance()
	}
	b.ReportMetric(a.MaxUtilization(), "max_util")
}

// BenchmarkFigure2BackboneMST regenerates Figure 2: back-bone MST plus
// distributed GHS local MSTs on a multi-region internetwork.
func BenchmarkFigure2BackboneMST(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := graph.MultiRegion(rng, graph.MultiRegionSpec{
		Regions: 4, NodesPerRegion: 8, ExtraIntra: 4, InterLinks: 2,
	})
	var msgs int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mst.Backbone(g, true)
		if err != nil {
			b.Fatal(err)
		}
		msgs = res.Stats.Messages
	}
	b.ReportMetric(float64(msgs), "ghs_msgs")
}

// benchMailWorld builds a one-region three-server world for the retrieval
// benches.
func benchMailWorld(b *testing.B) (*sim.Scheduler, *netsim.Network, *client.Agent, *client.Agent) {
	b.Helper()
	g := graph.New()
	g.MustAddNode(graph.Node{ID: 1, Label: "HA", Region: "R1", Kind: graph.KindHost})
	g.MustAddNode(graph.Node{ID: 2, Label: "HB", Region: "R1", Kind: graph.KindHost})
	for i := graph.NodeID(101); i <= 103; i++ {
		g.MustAddNode(graph.Node{ID: i, Label: fmt.Sprintf("S%d", i-100), Region: "R1", Kind: graph.KindServer})
	}
	g.MustAddEdge(1, 101, 1)
	g.MustAddEdge(2, 102, 1)
	g.MustAddEdge(101, 102, 1)
	g.MustAddEdge(102, 103, 1)
	sched := sim.New(9)
	net := netsim.New(sched, g)
	dir := server.NewDirectory("R1")
	regions := server.NewRegionMap()
	servers := []graph.NodeID{101, 102, 103}
	srvs := make(map[graph.NodeID]*server.Server)
	for _, id := range servers {
		srv, err := server.New(server.Config{ID: id, Region: "R1", Net: net, Dir: dir, Regions: regions})
		if err != nil {
			b.Fatal(err)
		}
		srvs[id] = srv
	}
	alice := names.MustParse("R1.HA.alice")
	bob := names.MustParse("R1.HB.bob")
	if err := dir.SetAuthority(alice, servers); err != nil {
		b.Fatal(err)
	}
	if err := dir.SetAuthority(bob, []graph.NodeID{102, 101, 103}); err != nil {
		b.Fatal(err)
	}
	hostA, err := client.NewHost(net, 1)
	if err != nil {
		b.Fatal(err)
	}
	hostB, err := client.NewHost(net, 2)
	if err != nil {
		b.Fatal(err)
	}
	lookup := func(id graph.NodeID) *server.Server { return srvs[id] }
	aAgent, err := client.NewAgent(alice, hostA, lookup, servers)
	if err != nil {
		b.Fatal(err)
	}
	bAgent, err := client.NewAgent(bob, hostB, lookup, []graph.NodeID{102, 101, 103})
	if err != nil {
		b.Fatal(err)
	}
	return sched, net, aAgent, bAgent
}

// BenchmarkE1GetMail measures the paper's retrieval algorithm: one full
// send+deliver+retrieve round trip, reporting polls per retrieval (§5's ≈1).
func BenchmarkE1GetMail(b *testing.B) {
	sched, _, alice, bob := benchMailWorld(b)
	alice.GetMail() // cold start outside the measurement
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bob.Send([]names.Name{alice.User()}, "s", "b"); err != nil {
			b.Fatal(err)
		}
		sched.Run()
		alice.GetMail()
	}
	st := alice.Stats()
	b.ReportMetric(float64(st.Polls)/float64(st.Retrievals), "polls/retrieval")
}

// BenchmarkE1PollAll is the baseline ablation: polling the full authority
// list on every retrieval.
func BenchmarkE1PollAll(b *testing.B) {
	sched, _, alice, bob := benchMailWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bob.Send([]names.Name{alice.User()}, "s", "b"); err != nil {
			b.Fatal(err)
		}
		sched.Run()
		alice.PollAll()
	}
	st := alice.Stats()
	b.ReportMetric(float64(st.Polls)/float64(st.Retrievals), "polls/retrieval")
}

// BenchmarkE3BalanceLarge measures the assignment algorithm at scale
// (48 hosts / 8 servers), single-user moves.
func BenchmarkE3BalanceLarge(b *testing.B) {
	benchBalance(b, 1)
}

// BenchmarkE3BalanceBatched is the paper's accelerated variant ablation:
// ten users per move.
func BenchmarkE3BalanceBatched(b *testing.B) {
	benchBalance(b, 10)
}

func benchBalance(b *testing.B, batch int) {
	b.Helper()
	rng := rand.New(rand.NewSource(23))
	g := graph.RandomConnected(rng, 56, 28, 1)
	ids := g.NodeIDs()
	srv := ids[:8]
	hst := ids[8:]
	users := make(map[graph.NodeID]int)
	total := 0
	for _, h := range hst {
		users[h] = 5 + rng.Intn(60)
		total += users[h]
	}
	maxLoad := make(map[graph.NodeID]int)
	for _, s := range srv {
		maxLoad[s] = total/8 + total/24
	}
	commW, procW, procTime := assign.PaperWeights()
	a, err := assign.New(assign.Config{
		Topology: g, Hosts: hst, Servers: srv,
		Users: users, MaxLoad: maxLoad,
		ProcTime: procTime, CommW: commW, ProcW: procW,
		MoveBatch: batch,
	})
	if err != nil {
		b.Fatal(err)
	}
	var moves int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Initialize()
		moves = a.Balance().Moves
	}
	b.ReportMetric(float64(moves), "moves")
}

// BenchmarkE3BalanceScale2k measures the assignment engine on the PR's
// large-topology instance through the public API: 2 000 nodes, 24 servers,
// ≈108 000 users, batched moves. The matching reference-engine numbers live
// in internal/assign (BenchmarkBalanceScaleReference).
func BenchmarkE3BalanceScale2k(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomConnected(rng, 2000, 6000, 1)
	ids := g.NodeIDs()
	srv := ids[:24]
	hst := ids[24:]
	users := make(map[graph.NodeID]int, len(hst))
	total := 0
	for _, h := range hst {
		users[h] = 20 + rng.Intn(71)
		total += users[h]
	}
	maxLoad := make(map[graph.NodeID]int, len(srv))
	for _, s := range srv {
		maxLoad[s] = total/len(srv) + total/(3*len(srv))
	}
	commW, procW, procTime := assign.PaperWeights()
	a, err := assign.New(assign.Config{
		Topology: g, Hosts: hst, Servers: srv,
		Users: users, MaxLoad: maxLoad,
		ProcTime: procTime, CommW: commW, ProcW: procW,
		MoveBatch: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	var stats assign.BalanceStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Initialize()
		stats = a.Balance()
	}
	b.ReportMetric(float64(total), "users")
	b.ReportMetric(float64(stats.Moves), "moves")
	b.ReportMetric(float64(stats.UsersMoved), "users_moved")
	b.ReportMetric(a.MaxUtilization(), "max_util")
}

// BenchmarkE4TreeBroadcast measures one full broadcast+convergecast over the
// back-bone MST of a 6×8 multi-region internetwork.
func BenchmarkE4TreeBroadcast(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	g := graph.MultiRegion(rng, graph.MultiRegionSpec{
		Regions: 6, NodesPerRegion: 8, ExtraIntra: 4, InterLinks: 2,
	})
	res, err := mst.Backbone(g, false)
	if err != nil {
		b.Fatal(err)
	}
	origin := g.NodeIDs()[0]
	b.ResetTimer()
	var treeCost float64
	for i := 0; i < b.N; i++ {
		net := netsim.New(sim.New(33), g)
		bt, err := broadcast.Setup(broadcast.Config{Net: net, Tree: res.Combined})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bt.Start(origin, "blast", nil); err != nil {
			b.Fatal(err)
		}
		net.Scheduler().Run()
		treeCost = float64(net.Stats().Get("cost_milli")) / 1000
	}
	// Flood baseline cost for the ratio metric.
	paths, err := g.ShortestPaths(origin)
	if err != nil {
		b.Fatal(err)
	}
	flood := 0.0
	for _, id := range g.NodeIDs() {
		if id != origin {
			flood += 2 * paths.Dist[id]
		}
	}
	b.ReportMetric(flood/treeCost, "flood/tree_cost")
}

// BenchmarkE5GHS measures one full distributed GHS MST construction on a
// 60-node random graph, reporting the protocol message count.
func BenchmarkE5GHS(b *testing.B) {
	rng := rand.New(rand.NewSource(44))
	g := graph.RandomConnected(rng, 60, 90, 1)
	var msgs int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := netsim.New(sim.New(44), g)
		alg, err := mst.New(net, g.NodeIDs())
		if err != nil {
			b.Fatal(err)
		}
		alg.Start()
		net.Scheduler().Run()
		if _, err := alg.Tree(); err != nil {
			b.Fatal(err)
		}
		msgs = alg.Stats().Messages
	}
	b.ReportMetric(float64(msgs), "ghs_msgs")
}

// BenchmarkE7RoamingDelivery measures a location-independent delivery to a
// roaming user (probe + consult + alert path).
func BenchmarkE7RoamingDelivery(b *testing.B) {
	ex := graph.Figure1()
	users := map[graph.NodeID][]string{
		ex.Hosts[0]: {"alice"},
		ex.Hosts[1]: {"bob"},
	}
	s, err := core.NewLocation(core.LocationConfig{
		Topology: ex.G, Region: "R1", UsersPerHost: users, Seed: 55,
	})
	if err != nil {
		b.Fatal(err)
	}
	alice, _ := s.Agent(names.MustParse("R1.H1.alice"))
	bob, _ := s.Agent(names.MustParse("R1.H2.bob"))
	if err := alice.MoveTo(ex.Hosts[5]); err != nil {
		b.Fatal(err)
	}
	if err := alice.Login(); err != nil {
		b.Fatal(err)
	}
	s.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bob.Send([]names.Name{alice.User()}, "m", "b"); err != nil {
			b.Fatal(err)
		}
		s.Run()
		alice.GetMail()
	}
}

// BenchmarkE10AttributeSearch measures one full-tree attribute search over
// 40 profiles on 10 nodes.
func BenchmarkE10AttributeSearch(b *testing.B) {
	g := graph.MultiRegion(rand.New(rand.NewSource(66)), graph.MultiRegionSpec{
		Regions: 3, NodesPerRegion: 4, ExtraIntra: 2, InterLinks: 1,
	})
	profiles := make(map[graph.NodeID][]*attr.Profile)
	i := 0
	for _, n := range g.Nodes() {
		for k := 0; k < 4; k++ {
			u := names.Name{Region: "r", Host: "h", User: fmt.Sprintf("u%d", i)}
			p := &attr.Profile{User: u}
			p.Add(attr.TypeExpertise, []string{"mail", "db", "net"}[i%3], attr.Public)
			profiles[n.ID] = append(profiles[n.ID], p)
			i++
		}
	}
	q := attr.Query{Predicates: []attr.Predicate{
		{Type: attr.TypeExpertise, Op: attr.OpEquals, Pattern: "mail"},
	}}
	origin := g.NodeIDs()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := core.NewAttribute(core.AttributeConfig{Topology: g, Profiles: profiles, Seed: 66})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Search(origin, q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeliveryPipeline measures one end-to-end syntax-directed
// submission → resolution → deposit → retrieval on the Figure 1 region.
func BenchmarkDeliveryPipeline(b *testing.B) {
	ex := graph.Figure1()
	users := map[graph.NodeID][]string{
		ex.Hosts[0]: {"alice"},
		ex.Hosts[1]: {"bob"},
	}
	s, err := core.NewSyntax(core.SyntaxConfig{Topology: ex.G, UsersPerHost: users, Seed: 77})
	if err != nil {
		b.Fatal(err)
	}
	alice := names.MustParse("R1.H1.alice")
	bob := names.MustParse("R1.H2.bob")
	agent, _ := s.Agent(bob)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Send(alice, []names.Name{bob}, "s", "b"); err != nil {
			b.Fatal(err)
		}
		s.Run()
		agent.GetMail()
	}
}

// BenchmarkSimKernel measures raw event-kernel throughput.
func BenchmarkSimKernel(b *testing.B) {
	s := sim.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(sim.Time(i%1000), func() {})
		if i%1024 == 0 {
			s.Run()
		}
	}
	s.Run()
}

// BenchmarkLevenshtein measures the fuzzy-name matcher on realistic name
// lengths.
func BenchmarkLevenshtein(b *testing.B) {
	for i := 0; i < b.N; i++ {
		attr.Levenshtein("alice liddell", "alise lidell")
	}
}

// BenchmarkWireRoundTrip measures a full submit+getmail cycle over the TCP
// wire protocol against a live cluster.
func BenchmarkWireRoundTrip(b *testing.B) {
	srv, err := wire.NewServer("127.0.0.1:0", []string{"s1", "s2"})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := wire.Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Register("R1.h1.alice"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Submit("R1.h2.bob", []string{"R1.h1.alice"}, "s", "b"); err != nil {
			b.Fatal(err)
		}
		if _, err := c.GetMail("R1.h1.alice"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveClusterSubmit measures the goroutine-per-server runtime
// without the TCP layer.
func BenchmarkLiveClusterSubmit(b *testing.B) {
	c := livenet.NewCluster()
	defer c.Close()
	for _, n := range []string{"s1", "s2"} {
		if _, err := c.AddServer(n); err != nil {
			b.Fatal(err)
		}
	}
	user := names.MustParse("R1.h1.alice")
	c.Directory().SetAuthority(user, []string{"s1", "s2"})
	agent, err := c.NewAgent(user)
	if err != nil {
		b.Fatal(err)
	}
	from := names.MustParse("R1.h2.bob")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Submit(from, []names.Name{user}, "s", "b"); err != nil {
			b.Fatal(err)
		}
		agent.GetMail()
	}
}

// BenchmarkLocindRehash measures the §3.2.3c reconfiguration lever: change
// the hash modulus and migrate affected mailboxes.
func BenchmarkLocindRehash(b *testing.B) {
	ex := graph.Figure1()
	users := make(map[graph.NodeID][]string)
	for i, h := range ex.Hosts {
		for u := 0; u < 6; u++ {
			users[h] = append(users[h], fmt.Sprintf("u%d_%d", i, u))
		}
	}
	s, err := core.NewLocation(core.LocationConfig{
		Topology: ex.G, Region: "R1", UsersPerHost: users, Seed: 88,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Buffer one message per user so rehash has mailboxes to move.
	all := s.Users()
	sender, _ := s.Agent(all[0])
	for _, u := range all[1:] {
		if err := sender.Send([]names.Name{u}, "m", "b"); err != nil {
			b.Fatal(err)
		}
	}
	s.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := 4 + i%5
		if _, err := s.Sys.Rehash(k); err != nil {
			b.Fatal(err)
		}
		s.Run()
	}
}
