# Tier-1: the seed gate — must always pass.
.PHONY: tier1
tier1:
	go build ./...
	go vet ./...
	go test ./...

# Tier-2: the full suite under the race detector — this exercises the
# parallel Dijkstra fan-out and AllPairs worker pool in internal/graph and
# internal/assign, plus the deterministic chaos soaks (seeded; the live soak
# runs in well under 30s).
.PHONY: tier2
tier2: tier1
	go test -race ./...

# Chaos: just the fault-injection soaks, verbosely.
.PHONY: chaos
chaos:
	go test -race -v -run 'TestChaosSoak' ./internal/faults/

# Tier-2 observability slice: the concurrency-sensitive instrumentation
# surface (registry/histograms/tracer, the live cluster that feeds them, and
# the wire status op that ships them) under the race detector.
.PHONY: tier2-obs
tier2-obs:
	go test -race ./internal/obs/ ./internal/livenet/ ./internal/wire/

# Obs demo: the live chaos soak with the per-message trace audit enabled,
# printing counters and per-stage latency quantiles from the obs registry.
.PHONY: obs-demo
obs-demo:
	go run ./examples/chaos

# Bench: the full benchmark suite with -benchmem, converted to BENCH_PR2.json
# (name → ns/op, allocs/op, domain metrics) for the committed perf trajectory.
# -benchtime 0.2s keeps the run inside the CI budget; the scale benches take a
# couple of seconds each regardless because one iteration is that big.
.PHONY: bench
bench:
	go test -run '^$$' -bench . -benchmem -benchtime 0.2s ./... | go run ./cmd/benchjson -o BENCH_PR2.json

.PHONY: all
all: tier2
