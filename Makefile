# Tier-1: the seed gate — must always pass.
.PHONY: tier1
tier1:
	go build ./...
	go test ./...

# Tier-2: vet + the full suite under the race detector, including the
# deterministic chaos soaks (seeded; the live soak runs in well under 30s).
.PHONY: tier2
tier2: tier1
	go vet ./...
	go test -race ./...

# Chaos: just the fault-injection soaks, verbosely.
.PHONY: chaos
chaos:
	go test -race -v -run 'TestChaosSoak' ./internal/faults/

.PHONY: all
all: tier2
