# Tier-1: the seed gate — must always pass.
.PHONY: tier1
tier1:
	go build ./...
	go vet ./...
	go test ./...

# Tier-2: the full suite under the race detector — this exercises the
# parallel Dijkstra fan-out and AllPairs worker pool in internal/graph and
# internal/assign, plus the deterministic chaos soaks (seeded; the live soak
# runs in well under 30s).
.PHONY: tier2
tier2: tier1
	go test -race ./...

# Tier-1 under the race detector: the seed gate with -race, as one target —
# what CI runs on every PR alongside plain tier1.
.PHONY: tier1-race
tier1-race:
	go test -race ./...

# Fuzz smoke: a short bounded run of each wire-protocol and WAL fuzz target
# (the corpora under */testdata/fuzz/ always run as regression seeds in
# plain `go test`; this additionally mutates for ~5s per target).
.PHONY: fuzz-smoke
fuzz-smoke:
	go test -run '^$$' -fuzz '^FuzzParseRequest$$' -fuzztime 5s ./internal/wire/
	go test -run '^$$' -fuzz '^FuzzStatusSnapshot$$' -fuzztime 5s ./internal/wire/
	go test -run '^$$' -fuzz '^FuzzTBatch$$' -fuzztime 5s ./internal/wire/
	go test -run '^$$' -fuzz '^FuzzBinaryFrame$$' -fuzztime 5s ./internal/wire/
	go test -run '^$$' -fuzz '^FuzzWALRecord$$' -fuzztime 5s ./internal/mail/mailstore/
	go test -run '^$$' -fuzz '^FuzzPredicateQuery$$' -fuzztime 5s ./internal/attr/

# Relay-batching gate: the server-side batching fabric (coalescing, flush
# watermarks, retry splitting, batch-size-1 equivalence) plus the O(1)
# StoredBytes regression bench over three store sizes.
.PHONY: bench-relay
bench-relay:
	go test -run 'TestBatch|TestResolve|TestDelivery' ./internal/server/
	go test -run '^$$' -bench 'BenchmarkTotalBytes' -benchtime 0.2s ./internal/mail/mailstore/

# Tier-2 durability slice: the WAL/snapshot/recovery store tests, the
# kill-restart-from-disk paths on both transports, and the no-spool chaos
# soaks — all under the race detector.
.PHONY: tier2-durability
tier2-durability:
	go test -race -run 'Durable|TornTail|CorruptSealed|ShardMismatch|KillRestart|ClusterReopen|WALRecord' ./internal/mail/mailstore/ ./internal/livenet/ ./internal/server/ ./internal/faults/
	go test -race -run 'TestSimNoLoss|TestSimMemory|TestLiveNoLoss|TestKillRestartLoses' ./internal/loadgen/

# Tier-2 wire slice: the v3 wire path under the race detector — binary
# framing, pipelining, the cross-version compat matrix, the bounded worker
# pool, and the pooled text reader.
.PHONY: tier2-wire
tier2-wire:
	go test -race -run 'Compat|Pipeline|Binary|Negotiat|WorkPool|WorkQueue|ConnReader' ./internal/wire/ ./internal/server/

# Tier-2 balance slice: the pluggable placement seam under the race detector —
# the policy unit tests (JSQ sampling, rebalancer hysteresis/budget/diversion),
# the static-policy bit-compat pin, the hot-spot engine races, reconfig racing
# the rebalancer, the migration-vs-kill-restart chaos, and the directory
# placement-event funnel.
.PHONY: tier2-balance
tier2-balance:
	go test -race ./internal/placement/
	go test -race -run 'TestStaticPolicyBitCompat|TestJSQSpreadsHotspot|TestRebalancerMigrates|TestReconfigUnderRebalance|TestMigrationRacesKillRestart' ./internal/loadgen/
	go test -race -run 'TestDirectoryPlacementEventFunnel' ./internal/server/

# Tier-2 architecture slice: the §3.2/§3.3 shoot-out under the race detector —
# the roaming scenario (overhead auditor, rehash reconfiguration, faults), the
# E7/E8 exact-count property pins, the locind rehash-vs-in-flight race table,
# the attr mass-distribution scenario (loss/bound/partial auditors under
# chaos), and the convergecast node-kill regression.
.PHONY: tier2-arch
tier2-arch:
	go test -race -run 'TestRoam|TestE7|TestRehash|TestAttrScenario|TestConvergecast' \
		./internal/loadgen/ ./internal/locind/ ./internal/broadcast/
	go test -race ./internal/attr/

# Tier-2 attr-prune slice: the selective-multicast machinery under the race
# detector — the sketch unit tests (churn no-false-negative property, FP
# bound), the Distribute≡Start pruning property and stale-fail-open pins in
# internal/broadcast, the wire query verb, and the scenario-level
# pruned-vs-unpruned equivalence plus chaos auditors in internal/loadgen.
.PHONY: tier2-attr-prune
tier2-attr-prune:
	go test -race ./internal/sketch/
	go test -race -run 'TestDistribute|TestStaleSketch|TestPrunedNodeSet|TestRefresh' ./internal/broadcast/
	go test -race -run 'TestQuery|TestSketch|TestSearchTerms' ./internal/wire/ ./internal/mail/mailstore/
	go test -race -run 'TestAttrPrune|TestAttrPruned' ./internal/loadgen/

# Check: the full pre-merge gate.
.PHONY: check
check: tier1 tier1-race fuzz-smoke bench-relay tier2-durability tier2-wire tier2-balance tier2-arch tier2-attr-prune

# Mailbench: the capacity harness acceptance run — a million-user population
# on 64 simulated servers, no faults, auditors on, capacity sweep written to
# BENCH_PR4.json.
.PHONY: mailbench
mailbench:
	go run ./cmd/mailbench -transport netsim -users 1000000 -servers 64 -seed 1 -o BENCH_PR4.json

# Chaos: just the fault-injection soaks, verbosely.
.PHONY: chaos
chaos:
	go test -race -v -run 'TestChaosSoak' ./internal/faults/

# Tier-2 observability slice: the concurrency-sensitive instrumentation
# surface (registry/histograms/tracer, the live cluster that feeds them, and
# the wire status op that ships them) under the race detector.
.PHONY: tier2-obs
tier2-obs:
	go test -race ./internal/obs/ ./internal/livenet/ ./internal/wire/

# Obs demo: the live chaos soak with the per-message trace audit enabled,
# printing counters and per-stage latency quantiles from the obs registry.
.PHONY: obs-demo
obs-demo:
	go run ./examples/chaos

# Bench: the full benchmark suite with -benchmem, converted to BENCH_PR2.json
# (name → ns/op, allocs/op, domain metrics) for the committed perf trajectory.
# -benchtime 0.2s keeps the run inside the CI budget; the scale benches take a
# couple of seconds each regardless because one iteration is that big.
.PHONY: bench
bench:
	go test -run '^$$' -bench . -benchmem -benchtime 0.2s ./... | go run ./cmd/benchjson -o BENCH_PR2.json

# Durability bench: the acceptance run behind BENCH_PR6.json — the
# million-user/64-server sweep with durable stores off, on (fsync never and
# always), and on + kill-restart chaos; reports WAL append throughput and
# cold recovery-replay time per point.
.PHONY: bench-durability
bench-durability:
	rm -rf /tmp/mailbench-pr6
	go run ./cmd/mailbench -transport netsim -users 1000000 -servers 64 -seed 1 \
		-datadir /tmp/mailbench-pr6 -durability off,never,always,chaos -o BENCH_PR6.json
	rm -rf /tmp/mailbench-pr6

# Wire bench: the acceptance run behind BENCH_PR7.json — the million-user/
# 64-server sweep over text-v2 vs binary-v3 framing at inflight 1/8/32 and
# batch 1/16, each point reporting the pipelined-burst msgs/sec and
# allocs/msg alongside the capacity metrics, plus one faults-on binary point
# appended to prove exactly-once holds at speed.
.PHONY: bench-wire
bench-wire:
	go run ./cmd/mailbench -transport wire -users 1000000 -servers 64 -seed 1 \
		-proto text,binary -inflight 1,8,32 -batch 1,16 -o BENCH_PR7.json
	go run ./cmd/mailbench -transport wire -users 1000000 -servers 64 -seed 1 \
		-proto binary -inflight 8 -batch 1 -faults -append -o BENCH_PR7.json

# Balance bench: the acceptance run behind BENCH_PR8.json — the million-user/
# 64-server sweep racing the §3.1.1 static optimum against JSQ(2) submit-time
# choice and the continuous rebalancer, first under the hot-spot profile the
# optimizer cannot see, then under a flash crowd appended to the same document.
# Every point runs with auditors on; the rebalancer points also report
# migrations_total and migration_cost.
.PHONY: bench-balance
bench-balance:
	go run ./cmd/mailbench -transport netsim -users 1000000 -servers 64 -seed 1 \
		-messages 6000 -ticks 300 -sessions 256 -srate 4 -retry 200 \
		-policy static,jsq,rebalance -profile hotspot -o BENCH_PR8.json
	go run ./cmd/mailbench -transport netsim -users 1000000 -servers 64 -seed 1 \
		-messages 6000 -ticks 300 -sessions 256 -srate 4 -retry 200 \
		-policy static,jsq,rebalance -profile flash:100:60 -append -o BENCH_PR8.json

# Architecture bench: the acceptance run behind BENCH_PR9.json — the
# three-architecture shoot-out at a million users on 64 servers. The §3.2
# roaming scenario runs with live rehash reconfiguration, then again under
# the chaos schedule; the §3.3 attribute-broadcast scenario likewise. Every
# point runs with its auditors on (§3.2.2c overhead, exactly-once across
# roams, no lost broadcast deliveries, bounded convergecast, partials
# flagged); a syntax-architecture point heads the document for comparison.
.PHONY: bench-arch
bench-arch:
	go run ./cmd/mailbench -transport netsim -users 1000000 -servers 64 -seed 1 \
		-messages 6000 -ticks 300 -sessions 256 -retry 200 -o BENCH_PR9.json
	go run ./cmd/mailbench -arch roaming -users 1000000 -servers 64 -seed 1 \
		-messages 6000 -ticks 300 -sessions 256 -append -o BENCH_PR9.json
	go run ./cmd/mailbench -arch roaming -users 1000000 -servers 64 -seed 1 \
		-messages 6000 -ticks 300 -sessions 256 -faults -append -o BENCH_PR9.json
	go run ./cmd/mailbench -arch attr -users 1000000 -servers 64 -seed 1 \
		-ticks 300 -queries 60 -append -o BENCH_PR9.json
	go run ./cmd/mailbench -arch attr -users 1000000 -servers 64 -seed 1 \
		-ticks 300 -queries 60 -faults -append -o BENCH_PR9.json

# Attr-prune bench: the acceptance run behind BENCH_PR10.json — E22, the
# selective multicast vs E21's exhaustive broadcast at a million users on 64
# servers. Point one replays E21 exactly (-noprune); point two runs the same
# seed with sketch pruning (identical match sets, auditors checking every
# pruned subtree for false negatives); point three adds the chaos schedule
# with a periodic refresh cadence, so stale caches must fail open while
# crashes produce flagged partials.
.PHONY: bench-attr
bench-attr:
	go run ./cmd/mailbench -arch attr -users 1000000 -servers 64 -seed 1 \
		-ticks 300 -queries 60 -noprune -o BENCH_PR10.json
	go run ./cmd/mailbench -arch attr -users 1000000 -servers 64 -seed 1 \
		-ticks 300 -queries 60 -append -o BENCH_PR10.json
	go run ./cmd/mailbench -arch attr -users 1000000 -servers 64 -seed 1 \
		-ticks 300 -queries 60 -faults -sketchrefresh 8 -append -o BENCH_PR10.json

.PHONY: all
all: tier2
