module github.com/largemail/largemail

go 1.22
